//! Figure 6.1 — S&F node degree distributions (analytical approximation and
//! exact, from the degree MC) against binomial distributions with the same
//! expectation. Parameters: `s = 90`, `d_L = 0`, `ℓ = 0`, `d_s(u) = 90`.

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_markov::binomial::binomial_with_mean;
use sandf_markov::{AnalyticalDegrees, DegreeMc, DegreeMcParams};

fn moments(pmf: &[f64]) -> (f64, f64) {
    let mean: f64 = pmf.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
    let var: f64 = pmf.iter().enumerate().map(|(k, &p)| (k as f64 - mean).powi(2) * p).sum();
    (mean, var)
}

fn main() {
    note("Figure 6.1: degree distributions, s=90, d_L=0, l=0, d_s(u)=90");
    let d_m = 90usize;
    let analytical = AnalyticalDegrees::new(d_m).expect("d_m is even");

    let config = SfConfig::lossless(90).expect("legal config");
    let params = DegreeMcParams::new(config, 0.0).with_initial_state(30, 30);
    note("solving the degree MC (Section 6.2) ...");
    let mc = DegreeMc::solve(params).expect("degree MC converges");
    note(&format!(
        "degree MC: {} states, {} fixed-point iterations",
        mc.states().len(),
        mc.fixed_point_iterations()
    ));

    let binom_out = binomial_with_mean(d_m as u64, analytical.mean_out());
    let binom_in = binomial_with_mean(d_m as u64, analytical.mean_in());

    let mc_out = mc.out_pmf();
    let mc_in = mc.in_pmf();
    let an_out = analytical.out_pmf();
    let an_in = analytical.in_pmf();

    println!();
    note("panel (a): node indegree");
    header(&["indegree", "binomial", "sandf_analytical", "sandf_markov"]);
    for k in 0..=45usize {
        println!(
            "{k}\t{}\t{}\t{}",
            fmt(binom_in.get(k).copied().unwrap_or(0.0)),
            fmt(an_in.get(k).copied().unwrap_or(0.0)),
            fmt(mc_in.get(k).copied().unwrap_or(0.0)),
        );
    }

    println!();
    note("panel (b): node outdegree");
    header(&["outdegree", "binomial", "sandf_analytical", "sandf_markov"]);
    for d in 0..=90usize {
        println!(
            "{d}\t{}\t{}\t{}",
            fmt(binom_out.get(d).copied().unwrap_or(0.0)),
            fmt(an_out.get(d).copied().unwrap_or(0.0)),
            fmt(mc_out.get(d).copied().unwrap_or(0.0)),
        );
    }

    println!();
    note("summary (paper: means d_m/3 = 30; S&F variance below binomial)");
    header(&["curve", "mean", "variance"]);
    let (bm, bv) = moments(&binom_out);
    println!("binomial_out\t{}\t{}", fmt(bm), fmt(bv));
    println!("analytical_out\t{}\t{}", fmt(analytical.mean_out()), fmt(analytical.var_out()));
    let (mm, mv) = moments(&mc_out);
    println!("markov_out\t{}\t{}", fmt(mm), fmt(mv));
    let (bmi, bvi) = moments(&binom_in);
    println!("binomial_in\t{}\t{}", fmt(bmi), fmt(bvi));
    println!("analytical_in\t{}\t{}", fmt(analytical.mean_in()), fmt(analytical.var_in()));
    let (mmi, mvi) = moments(&mc_in);
    println!("markov_in\t{}\t{}", fmt(mmi), fmt(mvi));
    note(&format!(
        "indegree variance: S&F analytical {:.2} / markov {:.2} vs binomial {:.2} -> {}",
        analytical.var_in(),
        mvi,
        bvi,
        if analytical.var_in() < bvi && mvi < bvi {
            "S&F tighter, as in the paper"
        } else {
            "MISMATCH"
        }
    ));
}
