//! Large-`n` performance smoke: drives the struct-of-arrays fast path at
//! scale and emits the machine-readable perf-trajectory JSON.
//!
//! ```text
//! perf_smoke [--nodes N] [--rounds R] [--loss F] [--seed S]
//!            [--engine flat|classic|par] [--protocol sandf|shuffle]
//!            [--threads T] [--out PATH] [--min-steps-per-sec F]
//!            [--metrics PATH]
//! ```
//!
//! Defaults: `--nodes 1000000 --rounds 50 --loss 0.01 --seed 42
//! --engine flat --protocol sandf --threads 1` (`--threads` only affects
//! `--engine par`; `--protocol shuffle` needs an arena engine — the
//! classic engine is S&F-only).
//! The JSON report is printed to stdout and, with
//! `--out`, also written to a file (CI uploads it as an artifact and the
//! PR commits it as `BENCH_PR<k>.json`). With `--min-steps-per-sec` the
//! binary exits nonzero when throughput falls below the floor, which is
//! how CI gates perf regressions; see EXPERIMENTS.md § Performance
//! methodology for how the floor is pinned.

use std::process::ExitCode;

use sandf_bench::perf::{run, PerfEngine, PerfProtocol, PerfSmokeConfig};
use sandf_obs::MetricsRegistry;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let value = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            value.parse().map(Some).map_err(|_| format!("bad value for {flag}: {value}"))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match smoke(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("perf_smoke: {message}");
            ExitCode::FAILURE
        }
    }
}

fn smoke(args: &[String]) -> Result<ExitCode, String> {
    let nodes = parse_flag(args, "--nodes")?.unwrap_or(1_000_000);
    let rounds = parse_flag(args, "--rounds")?.unwrap_or(50);
    let mut config = PerfSmokeConfig::at_scale(nodes, rounds);
    if let Some(loss) = parse_flag(args, "--loss")? {
        config.loss = loss;
    }
    if let Some(seed) = parse_flag(args, "--seed")? {
        config.seed = seed;
    }
    if let Some(engine) = parse_flag::<String>(args, "--engine")? {
        config.engine = match engine.as_str() {
            "flat" => PerfEngine::Flat,
            "classic" => PerfEngine::Classic,
            "par" => PerfEngine::Par,
            other => return Err(format!("unknown engine {other:?} (flat|classic|par)")),
        };
    }
    if let Some(protocol) = parse_flag::<String>(args, "--protocol")? {
        config.protocol = match protocol.as_str() {
            "sandf" => PerfProtocol::Sf,
            "shuffle" => PerfProtocol::Shuffle,
            other => return Err(format!("unknown protocol {other:?} (sandf|shuffle)")),
        };
    }
    if config.engine == PerfEngine::Classic && config.protocol != PerfProtocol::Sf {
        return Err("the classic engine runs only S&F; use --engine flat or par".to_string());
    }
    if let Some(threads) = parse_flag::<usize>(args, "--threads")? {
        if threads == 0 {
            return Err("--threads must be positive".to_string());
        }
        config.threads = threads;
    }
    let out: Option<String> = parse_flag(args, "--out")?;
    let floor: Option<f64> = parse_flag(args, "--min-steps-per-sec")?;
    let metrics: Option<String> = parse_flag(args, "--metrics")?;

    let registry = MetricsRegistry::new();
    let report = run(config, &registry);
    let json = report.to_json();
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = metrics {
        // Full registry exposition — phase-span histograms plus, for the
        // par engine, the `sim.par.shard_imbalance` gauge.
        std::fs::write(&path, registry.render_prometheus())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(floor) = floor {
        if report.steps_per_sec < floor {
            eprintln!(
                "perf_smoke: throughput {:.0} steps/sec is below the pinned floor {floor:.0}",
                report.steps_per_sec
            );
            return Ok(ExitCode::FAILURE);
        }
        eprintln!(
            "perf_smoke: throughput {:.0} steps/sec clears the floor {floor:.0}",
            report.steps_per_sec
        );
    }
    Ok(ExitCode::SUCCESS)
}
