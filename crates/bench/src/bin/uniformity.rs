//! Lemma 7.6 / Property M3 — uniformity: over a long steady-state run,
//! every id should be equally represented in other nodes' views.

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_sim::experiment::{uniformity, ExperimentParams};

fn main() {
    note("Lemma 7.6: uniform representation of ids in views (n=256, d_L=18, s=40)");
    let config = SfConfig::new(40, 18).expect("paper parameters");
    header(&["loss", "chi_square", "dof", "chi2_over_dof", "max_min_ratio"]);
    for (k, &loss) in [0.0, 0.01, 0.05].iter().enumerate() {
        let report = uniformity(
            &ExperimentParams { n: 256, config, loss, burn_in: 300, seed: 60 + k as u64 },
            120,
            40,
        );
        println!(
            "{}\t{}\t{}\t{}\t{}",
            fmt(loss),
            fmt(report.chi_square),
            report.degrees_of_freedom,
            fmt(report.chi_square / report.degrees_of_freedom as f64),
            fmt(report.max_min_ratio),
        );
    }
    note("expected shape: chi2/dof of order 1-10 (residual sample correlation), max/min close to 1");
    note("contrast: a biased protocol (e.g. permanent star hub) scores chi2/dof in the hundreds");
}
