//! Lemma 7.6 / Property M3 — uniformity: over a long steady-state run,
//! every id should be equally represented in other nodes' views.
//!
//! Replicated on the sweep executor: the χ² statistics are means over
//! independent runs with 95% CIs, which separates residual sample
//! correlation (stable across replicates) from run-to-run noise.

use sandf_bench::sweeps::SampleScale;
use sandf_bench::{note, sweeps};

const REPLICATES: usize = 4;

fn main() {
    note(&format!(
        "Lemma 7.6: uniform representation of ids in views (n=256, d_L=18, s=40, \
         {REPLICATES} replicates)"
    ));
    let scale = SampleScale { n: 256, burn_in: 300, samples: 120, sample_every: 40 };
    print!("{}", sweeps::uniformity_table(scale, REPLICATES, 60));
    note(
        "expected shape: chi2/dof of order 1-10 (residual sample correlation), max/min close to 1",
    );
    note("contrast: a biased protocol (e.g. permanent star hub) scores chi2/dof in the hundreds");
}
