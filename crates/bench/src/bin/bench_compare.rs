//! Perf-trend gate: compares fresh `perf_smoke` reports against the
//! committed `BENCH_PR*.json` trajectory and fails on regressions.
//!
//! ```text
//! bench_compare --baseline-dir DIR [--tolerance F] CURRENT.json...
//! ```
//!
//! Every `BENCH_*.json` in `--baseline-dir` is loaded as a baseline
//! (bare `sandf-perf-smoke/v1` reports and `sandf-perf-trend/v1` bundles
//! both work; other schemas are skipped). Each CURRENT report is matched
//! against the **best** same-config baseline; the markdown delta table
//! goes to stdout (CI appends it to `$GITHUB_STEP_SUMMARY`), and the
//! exit code is nonzero when any cell fell more than `--tolerance`
//! (default 0.30) below its baseline. Cells with no baseline yet are
//! reported but never fail.

use std::process::ExitCode;

use sandf_bench::compare::{
    any_regressed, compare, markdown_table, parse_reports, PerfPoint, DEFAULT_TOLERANCE,
};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let value = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            value.parse().map(Some).map_err(|_| format!("bad value for {flag}: {value}"))
        }
    }
}

fn load(path: &str) -> Result<Vec<PerfPoint>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_name()
        .map_or_else(|| path.to_string(), |n| n.to_string_lossy().into_owned());
    parse_reports(&text, &name).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gate(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::FAILURE
        }
    }
}

fn gate(args: &[String]) -> Result<ExitCode, String> {
    let baseline_dir: String = parse_flag(args, "--baseline-dir")?.unwrap_or_else(|| ".".into());
    let tolerance: f64 = parse_flag(args, "--tolerance")?.unwrap_or(DEFAULT_TOLERANCE);
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }

    // Everything after the flags is a current report path.
    let mut current_paths = Vec::new();
    let mut skip = false;
    for (i, arg) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if arg == "--baseline-dir" || arg == "--tolerance" {
            skip = true;
            continue;
        }
        if arg.starts_with("--") {
            return Err(format!("unknown flag {arg}"));
        }
        let _ = i;
        current_paths.push(arg.clone());
    }
    if current_paths.is_empty() {
        return Err("no current reports given (pass perf_smoke JSON paths)".to_string());
    }

    let mut baselines = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&baseline_dir)
        .map_err(|e| format!("reading {baseline_dir}: {e}"))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        })
        .collect();
    entries.sort();
    for path in &entries {
        baselines.extend(load(&path.to_string_lossy())?);
    }
    eprintln!(
        "bench_compare: {} baseline point(s) from {} file(s) in {baseline_dir}",
        baselines.len(),
        entries.len()
    );

    let mut current = Vec::new();
    for path in &current_paths {
        let points = load(path)?;
        if points.is_empty() {
            return Err(format!("{path} holds no sandf-perf-smoke/v1 report"));
        }
        current.extend(points);
    }

    let rows = compare(&current, &baselines, tolerance);
    print!("{}", markdown_table(&rows, tolerance));
    if any_regressed(&rows) {
        eprintln!("bench_compare: throughput regression beyond {:.0} %", tolerance * 100.0);
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
