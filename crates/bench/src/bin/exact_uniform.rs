//! Lemma 7.5 — exact enumeration of the global Markov chain for tiny
//! systems: irreducibility (Lemma A.2), the uniform stationary law on the
//! simple-state stratum, and the finite-`n` deviation on the full space.

use sandf_bench::{fmt, header, note};
use sandf_markov::ExactGlobalMc;

fn report(name: &str, initial: Vec<Vec<u8>>, s: usize, d_l: usize, loss: f64) {
    let mc = ExactGlobalMc::build(initial, s, d_l, loss, 5_000_000).expect("enumerable");
    let tv = mc.uniformity_tv().expect("stationary converges");
    let cond = mc
        .conditional_simple_uniformity_tv()
        .expect("stationary converges")
        .map_or_else(|| "-".to_string(), fmt);
    println!(
        "{name}\t{}\t{}\t{}\t{}\t{}\t{}\t{cond}",
        s,
        fmt(loss),
        mc.state_count(),
        mc.simple_state_count(),
        mc.scc_count(),
        fmt(tv),
    );
}

fn main() {
    note("Lemma 7.5 / A.2: exact global-MC enumeration for tiny systems");
    note("tv_uniform = TV(stationary, uniform over ALL states);");
    note("tv_simple = TV(stationary conditioned on simple states, uniform) — the finite-n form of Lemma 7.5");
    header(&["system", "s", "loss", "states", "simple_states", "sccs", "tv_uniform", "tv_simple"]);
    // n = 3, d_s(u) = 6 each.
    report("triangle_n3", vec![vec![1, 2], vec![0, 2], vec![0, 1]], 6, 0, 0.0);
    // n = 4, d_s(u) = 6 each — 885 states, 9 of them simple.
    report("square_n4", vec![vec![1, 2], vec![2, 3], vec![3, 0], vec![0, 1]], 6, 0, 0.0);
    // Lossy variant (Lemma 7.1 strong connectivity), smaller views.
    report("triangle_n3_lossy", vec![vec![1, 2], vec![0, 2], vec![0, 1]], 4, 2, 0.1);

    println!();
    note("expected: sccs = 1 everywhere; tv_simple ~ 0 for lossless runs;");
    note("tv_uniform substantially > 0 at tiny n (multiplicity corrections to Lemma 7.3 —");
    note("the paper's uniformity emerges as n >> s, where simple states dominate)");
}
