//! The observability report: one instrumented run with every `sandf-obs`
//! pillar attached.
//!
//! [`obs_report`] runs a seeded simulation with a [`SimRecorder`] counting
//! `sim.step.*`, a bounded [`EventJournal`] mirroring the step-event
//! stream, and (optionally) the engine's hot-path profiler — then, also
//! optionally, a small threaded [`Cluster`] through
//! [`Cluster::launch_observed`] so the exposition covers the
//! `runtime.node.*` and `net.memory.*` families too. The result bundles
//! the Prometheus exposition, the TSV dump, the journal JSONL, and the
//! sorted metric-name list.
//!
//! Determinism contract: with `profile: false` and `cluster: false`, the
//! whole report is a pure function of the config — two runs with the same
//! seed produce byte-identical exposition, TSV, and journal (the
//! simulation is single-threaded and the recorder observes it inline).
//! Profiling spans read the wall clock and the cluster runs free threads,
//! so those two switches trade determinism for coverage; golden tests pin
//! metric *names* for the full report and metric *values* only for the
//! deterministic subset.

use std::time::Duration;

use sandf_core::SfConfig;
use sandf_obs::{EventJournal, MetricsRegistry};
use sandf_runtime::{Cluster, ClusterConfig};
use sandf_sim::{topology, DelayModel, SimRecorder, SimStats, Simulation, UniformLoss};

use crate::sweeps::{initial_degree, paper_config};

/// Scale and switches of an observability report run.
#[derive(Clone, Copy, Debug)]
pub struct ObsReportConfig {
    /// System size of the instrumented simulation.
    pub n: usize,
    /// Rounds to run (`n` steps each).
    pub rounds: usize,
    /// Uniform message-loss rate.
    pub loss: f64,
    /// Largest per-message delay in global steps; `0` = immediate delivery.
    /// A nonzero bound exercises the `in_flight` counter and the journal's
    /// two-phase (`in_flight` then `delivered`) records.
    pub max_delay: u64,
    /// RNG seed of the simulation (and of the cluster, when enabled).
    pub seed: u64,
    /// Journal ring-buffer capacity (oldest events are evicted beyond it).
    pub journal_capacity: usize,
    /// Attach the engine's hot-path profiler (`sim.profile.*_ns` spans).
    /// Span values read the wall clock, so they are not run-to-run stable.
    pub profile: bool,
    /// Also run a small threaded cluster via [`Cluster::launch_observed`]
    /// so the report covers `runtime.node.*` and `net.memory.*`. Thread
    /// interleaving makes those counter values nondeterministic.
    pub cluster: bool,
}

impl ObsReportConfig {
    /// The full-scale report: a 1000-node run with every pillar on.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            n: 1_000,
            rounds: 30,
            loss: 0.02,
            max_delay: 8,
            seed: 2_009,
            journal_capacity: 1 << 16,
            profile: true,
            cluster: true,
        }
    }

    /// A toy-scale report for CI smoke tests and golden pins.
    #[must_use]
    pub fn toy() -> Self {
        Self {
            n: 64,
            rounds: 12,
            loss: 0.05,
            max_delay: 4,
            seed: 7,
            journal_capacity: 4_096,
            profile: true,
            cluster: true,
        }
    }
}

/// Everything an [`obs_report`] run produces.
pub struct ObsReport {
    /// Prometheus text exposition of the whole registry.
    pub prometheus: String,
    /// `name\tkind\tvalue` TSV dump of the whole registry.
    pub tsv: String,
    /// The journal contents as JSONL, one event per line.
    pub journal_jsonl: String,
    /// Sorted registered metric names (the golden-pinned surface).
    pub metric_names: Vec<String>,
    /// The simulation's own final ledger, for cross-checking.
    pub stats: SimStats,
}

/// Runs one instrumented simulation (plus, optionally, a small observed
/// cluster) and renders every observability output.
#[must_use]
pub fn obs_report(config: &ObsReportConfig) -> ObsReport {
    let registry = MetricsRegistry::new();
    let journal = EventJournal::new(config.journal_capacity);

    let protocol = paper_config();
    let nodes = topology::circulant(config.n, protocol, initial_degree(protocol, config.n));
    let loss = UniformLoss::new(config.loss).expect("valid loss rate");
    let delay = if config.max_delay == 0 {
        DelayModel::Immediate
    } else {
        DelayModel::UniformSteps { max: config.max_delay }
    };
    let mut sim = Simulation::with_delay(nodes, loss, delay, config.seed);
    sim.subscribe(Box::new(SimRecorder::with_journal(&registry, journal.clone())));
    if config.profile {
        sim.attach_profiler(&registry);
    }
    for _ in 0..config.n * config.rounds {
        sim.step();
    }
    sim.settle();

    if config.cluster {
        let cluster = Cluster::launch_observed(
            ClusterConfig {
                n: 8,
                protocol: SfConfig::new(12, 4).expect("legal toy parameters"),
                loss: config.loss,
                tick: Duration::from_millis(1),
                seed: config.seed,
                initial_out_degree: 4,
            },
            &registry,
        );
        cluster.run_for(Duration::from_millis(50));
        let _ = cluster.shutdown();
    }

    ObsReport {
        prometheus: registry.render_prometheus(),
        tsv: registry.render_tsv(),
        journal_jsonl: journal.to_jsonl(),
        metric_names: registry.metric_names(),
        stats: *sim.stats(),
    }
}
