//! Declarative fault scenarios compiled onto the replicated-sweep executor.
//!
//! A *scenario* is a small text spec — a header naming the system scale and
//! a sequence of `phase` lines naming a fault model and a duration — that
//! compiles to a [`ScheduledFault`] (see `sandf_sim::fault`) and runs as a
//! replicated sweep with one cell per phase. The output is a CI-banded
//! *envelope table*: per phase, the measured indegree statistics next to
//! the §6.2 degree-Markov-chain prediction at the phase's effective loss
//! rate, and (for churn phases) the Lemma 6.10 departed-id decay bound.
//!
//! # Spec grammar
//!
//! One directive per line; blank lines and `#` comments are ignored.
//!
//! ```text
//! scenario <name>              # required; [A-Za-z0-9_-]+
//! n <nodes>                    # required; system size ≥ 4
//! view <s> <d_L>               # required; the SfConfig thresholds
//! degree <d0>                  # initial outdegree (default: 2/3 point)
//! replicates <r>               # sweep replicates per phase (default 3)
//! seed <u64>                   # base seed (default 42)
//! burn_in <rounds>             # lossless warm-up rounds (default 0)
//! protocol <name>              # sandf | push_only | push_pull | shuffle
//!                              # (default sandf; baselines run through the
//!                              # unified Engine/ProtocolBehavior traits)
//! broadcast <fanout> <max_age> [pull]
//!                              # optional rumor layer over the live views:
//!                              # each measured phase seeds a rumor at the
//!                              # lowest live id and reports coverage,
//!                              # spread time, and message complexity
//!
//! phase <rounds> <fault> <args...>
//! churn <leaves> <joins>       # optional, attaches to the phase above
//! ```
//!
//! Fault models (arguments are positional):
//!
//! | spec | model | semantics |
//! |---|---|---|
//! | `uniform <rate>` | `UniformLoss` | i.i.d. loss (the paper's model) |
//! | `bursty <to_bad> <to_good> <loss_good> <loss_bad>` | `GilbertElliott` | per-sender bursty channel |
//! | `partition <regions> <sever> <base>` | `RegionalPartition` | cross-region loss at `sever` for the phase window, then heal |
//! | `perlink <salt> <bad_fraction> <good_rate> <bad_rate>` | `PerLinkLoss` | persistent per-link quality |
//! | `capacity <salt> <slow_fraction> <period> <base>` | `NodeCapacity` | slow cohort acts every `period`-th round |
//! | `victims <count> <victim_rate> <base>` | `VictimLoss` | targeted loss on the `count` highest-indegree nodes, re-aimed at phase start |
//!
//! The canonical printer ([`std::fmt::Display`]) emits exactly this
//! grammar, so `parse ∘ print ∘ parse = parse` (round-trip identity —
//! pinned by `tests/scenario_spec.rs`).
//!
//! # Execution semantics
//!
//! Each replicate replays the scenario from round 0 on a fresh circulant
//! topology: `burn_in` lossless rounds, then phase 0, 1, … up to and
//! including the cell's phase, with engine statistics reset at the target
//! phase's start — so a phase's row reports *that phase's* loss and
//! capacity-skip rates, while its degree snapshot reflects the full
//! history (partitions that healed, churn that integrated). Churn is
//! applied at phase start (lowest live ids leave, joiners enter via the
//! highest live sponsor); `victims` phases re-aim the victim set at the
//! measured top-indegree nodes via the engines' `update_fault` hook.
//!
//! Replicates run on the [`ParSimulation`] engine, whose output is
//! byte-identical for any thread count, and draw their seeds from the
//! sweep executor's stable `(base_seed, cell, replicate)` hash — the
//! resulting TSV is deterministic across thread counts and machines
//! (pinned by `tests/scenario_determinism.rs`).

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::RngCore;
use sandf_baselines::{PushOnlyBehavior, PushPullBehavior, ShuffleBehavior};
use sandf_core::{NodeId, SfConfig};
use sandf_graph::DegreeStats;
use sandf_markov::decay::leave_survival_bound;
use sandf_markov::{DegreeMc, DegreeMcParams};
use sandf_obs::MetricsRegistry;
use sandf_sim::{
    topology, BroadcastConfig, BroadcastLayer, Engine, GilbertElliott, NodeCapacity, ParSimulation,
    PerLinkLoss, PhaseFault, RegionalPartition, RumorChannel, ScheduledFault, UniformLoss,
    VictimLoss,
};

use crate::fmt;
use crate::sweep::{fnv1a64, Summary, SweepCell, SweepSpec};
use crate::sweeps::initial_degree;

/// The envelope tolerance added to the ci95 half-width when comparing the
/// measured mean indegree against the degree-MC prediction — the same
/// absolute anchor `tests/par_statistics.rs` uses.
pub const MC_MEAN_TOLERANCE: f64 = 1.0;

/// The metric columns every scenario cell reports, in order.
pub const SCENARIO_METRICS: &[&str] =
    &["mean_in", "in_std", "loss_rate", "skipped_frac", "stale_frac", "connected"];

/// The metric columns when the spec carries a `broadcast` directive: the
/// base columns plus the rumor layer's coverage, spread time to 99 %
/// (phase `rounds + 1` when unreached), and per-node message complexity,
/// all measured over the target phase.
pub const SCENARIO_BROADCAST_METRICS: &[&str] = &[
    "mean_in",
    "in_std",
    "loss_rate",
    "skipped_frac",
    "stale_frac",
    "connected",
    "bcast_coverage",
    "bcast_to99",
    "bcast_msgs_per_node",
];

// ---------------------------------------------------------------------------
// The AST
// ---------------------------------------------------------------------------

/// One phase's fault model, as written in the spec (engine-independent;
/// compiled to a [`PhaseFault`] by [`Scenario::compile`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultSpec {
    /// `uniform <rate>` — i.i.d. loss.
    Uniform {
        /// Loss rate in `[0, 1]`.
        rate: f64,
    },
    /// `bursty <to_bad> <to_good> <loss_good> <loss_bad>` — Gilbert–Elliott.
    Bursty {
        /// Good→bad transition probability.
        to_bad: f64,
        /// Bad→good transition probability.
        to_good: f64,
        /// Loss rate in the good state.
        loss_good: f64,
        /// Loss rate in the bad state.
        loss_bad: f64,
    },
    /// `partition <regions> <sever> <base>` — regional partition for the
    /// phase's window, healing when the phase ends.
    Partition {
        /// Number of regions (`id % regions`).
        regions: u64,
        /// Cross-region loss rate during the window (1 = hard partition).
        sever: f64,
        /// In-region (and post-heal) loss rate.
        base: f64,
    },
    /// `perlink <salt> <bad_fraction> <good_rate> <bad_rate>` — persistent
    /// per-link quality.
    PerLink {
        /// Link-map salt (XORed with the replicate salt).
        salt: u64,
        /// Fraction of directed links that are bad.
        bad_fraction: f64,
        /// Loss rate on good links.
        good_rate: f64,
        /// Loss rate on bad links.
        bad_rate: f64,
    },
    /// `capacity <salt> <slow_fraction> <period> <base>` — heterogeneous
    /// node capacities.
    Capacity {
        /// Cohort salt (XORed with the replicate salt).
        salt: u64,
        /// Fraction of nodes in the slow cohort.
        slow_fraction: f64,
        /// Slow nodes act once per this many rounds.
        period: u64,
        /// Uniform loss rate underneath.
        base: f64,
    },
    /// `victims <count> <victim_rate> <base>` — targeted inbound loss on
    /// the `count` highest-indegree nodes, measured at phase start.
    Victims {
        /// Number of top-indegree victims.
        count: usize,
        /// Inbound loss rate at a victim.
        victim_rate: f64,
        /// Loss rate everywhere else.
        base: f64,
    },
}

impl FaultSpec {
    /// The spec keyword naming this model.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Uniform { .. } => "uniform",
            Self::Bursty { .. } => "bursty",
            Self::Partition { .. } => "partition",
            Self::PerLink { .. } => "perlink",
            Self::Capacity { .. } => "capacity",
            Self::Victims { .. } => "victims",
        }
    }

    /// The phase's effective per-message loss rate in an `n`-node system —
    /// the rate the degree-MC prediction is solved at. For structured
    /// models this is the *marginal* rate of a message to a uniformly
    /// random target; the whole point of the envelope table is that
    /// structured loss at the same marginal rate need **not** behave like
    /// uniform loss at that rate.
    #[must_use]
    pub fn effective_rate(&self, n: usize) -> f64 {
        match *self {
            Self::Uniform { rate } => rate,
            Self::Bursty { to_bad, to_good, loss_good, loss_bad } => {
                let p_bad = to_bad / (to_bad + to_good);
                p_bad * loss_bad + (1.0 - p_bad) * loss_good
            }
            Self::Partition { regions, sever, base } => {
                let cross = (regions - 1) as f64 / regions as f64;
                cross * sever + (1.0 - cross) * base
            }
            Self::PerLink { bad_fraction, good_rate, bad_rate, .. } => {
                bad_fraction * bad_rate + (1.0 - bad_fraction) * good_rate
            }
            Self::Capacity { base, .. } => base,
            Self::Victims { count, victim_rate, base } => {
                let f = (count as f64 / n as f64).min(1.0);
                f * victim_rate + (1.0 - f) * base
            }
        }
    }

    /// Compiles the spec into a [`PhaseFault`] for the window
    /// `[start, start + duration)`. `salt` decorrelates hash-derived link
    /// maps and cohorts across replicates.
    #[must_use]
    pub fn build(&self, start: u64, duration: u64, salt: u64) -> PhaseFault {
        match *self {
            Self::Uniform { rate } => {
                PhaseFault::Uniform(UniformLoss::new(rate).expect("validated at parse time"))
            }
            Self::Bursty { to_bad, to_good, loss_good, loss_bad } => PhaseFault::Bursty(
                GilbertElliott::new(to_bad, to_good, loss_good, loss_bad)
                    .expect("validated at parse time"),
            ),
            Self::Partition { regions, sever, base } => PhaseFault::Partition(
                RegionalPartition::new(regions, start, duration, sever, base)
                    .expect("validated at parse time"),
            ),
            Self::PerLink { salt: s, bad_fraction, good_rate, bad_rate } => PhaseFault::PerLink(
                PerLinkLoss::new(s ^ salt, bad_fraction, good_rate, bad_rate)
                    .expect("validated at parse time"),
            ),
            Self::Capacity { salt: s, slow_fraction, period, base } => PhaseFault::Capacity(
                NodeCapacity::new(s ^ salt, slow_fraction, period, base)
                    .expect("validated at parse time"),
            ),
            Self::Victims { victim_rate, base, .. } => PhaseFault::Victims(
                VictimLoss::new(victim_rate, base).expect("validated at parse time"),
            ),
        }
    }
}

/// The protocol a scenario drives through the par engine. The default is
/// S&F; the baselines run through the unified `Engine`/`ProtocolBehavior`
/// traits on the same fault schedule. The §6.2 degree-MC and Lemma 6.10
/// predictions model S&F only, so the `mc_*`/`decay_bound` columns show
/// `-` for every other protocol — the envelope table still reports the
/// measured statistics under the scheduled faults.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProtocolSpec {
    /// Send & Forget (the default).
    #[default]
    Sf,
    /// The push-only baseline.
    PushOnly,
    /// The push-pull baseline (reply size 3).
    PushPull,
    /// The shuffle baseline (gossip size 3).
    Shuffle,
}

impl ProtocolSpec {
    /// The spec keyword naming this protocol.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Sf => "sandf",
            Self::PushOnly => "push_only",
            Self::PushPull => "push_pull",
            Self::Shuffle => "shuffle",
        }
    }
}

/// The `broadcast` directive: runs a rumor layer
/// ([`sandf_sim::BroadcastLayer`]) over the live views during each
/// measured phase, seeded at the lowest live id when the phase begins.
/// The rumor channel mirrors the phase's fault model (see
/// [`rumor_channel_for`]), so the envelope table reports how the scheduled
/// fault degrades dissemination, not just view quality.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BroadcastSpec {
    /// Push targets per informed node per round (≥ 1).
    pub fanout: usize,
    /// Rounds an informed node keeps pushing (`255` ≈ forever).
    pub max_age: u8,
    /// Push-pull instead of push-only.
    pub pull: bool,
}

impl BroadcastSpec {
    /// The rumor parameters this directive names.
    #[must_use]
    pub fn config(&self) -> BroadcastConfig {
        if self.pull {
            BroadcastConfig::push_pull(self.fanout, self.max_age)
        } else {
            BroadcastConfig::push(self.fanout, self.max_age)
        }
    }
}

/// The rumor channel matching a phase's fault model at the same
/// parameters: `uniform`/`bursty`/`partition` map directly, `victims`
/// aims at the same re-targeted victim set, and the membership-specific
/// models map to their marginals (`perlink` → uniform at the effective
/// rate; `capacity` gates sends rather than dropping them, so the rumor
/// channel stays lossless).
#[must_use]
pub fn rumor_channel_for(fault: &FaultSpec, n: usize, victims: &[NodeId]) -> RumorChannel {
    match *fault {
        FaultSpec::Uniform { rate } => RumorChannel::Uniform { rate },
        FaultSpec::Bursty { to_bad, to_good, loss_good, loss_bad } => {
            RumorChannel::Bursty { to_bad, to_good, loss_good, loss_bad }
        }
        FaultSpec::Partition { regions, sever, base } => {
            RumorChannel::Partition { regions, sever, base }
        }
        FaultSpec::PerLink { .. } => RumorChannel::Uniform { rate: fault.effective_rate(n) },
        FaultSpec::Capacity { .. } => RumorChannel::Lossless,
        FaultSpec::Victims { victim_rate, base, .. } => {
            RumorChannel::Victims { victim_rate, base, victims: victims.to_vec() }
        }
    }
}

/// Churn applied at a phase's start: the `leaves` lowest live ids depart,
/// then `joins` new nodes enter via the highest live sponsor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChurnSpec {
    /// Nodes departing at phase start.
    pub leaves: usize,
    /// Nodes joining at phase start.
    pub joins: usize,
}

/// One phase of a scenario: a fault model governing `rounds` rounds, with
/// optional churn at the boundary.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Phase {
    /// Rounds this phase governs.
    pub rounds: usize,
    /// The fault model in force.
    pub fault: FaultSpec,
    /// Churn applied when the phase begins.
    pub churn: Option<ChurnSpec>,
}

/// A parsed scenario: scale header plus the phase schedule.
#[derive(Clone, PartialEq, Debug)]
pub struct Scenario {
    /// Scenario name (`[A-Za-z0-9_-]+`).
    pub name: String,
    /// System size.
    pub n: usize,
    /// View size `s`.
    pub view_size: usize,
    /// Lower threshold `d_L`.
    pub lower_threshold: usize,
    /// Initial outdegree of the circulant bootstrap topology.
    pub degree: usize,
    /// Sweep replicates per phase cell.
    pub replicates: usize,
    /// Base seed for the sweep's replicate-seed hash.
    pub seed: u64,
    /// Lossless warm-up rounds before phase 0.
    pub burn_in: usize,
    /// The protocol under test (default S&F).
    pub protocol: ProtocolSpec,
    /// Optional rumor layer riding the live views during measured phases.
    pub broadcast: Option<BroadcastSpec>,
    /// The phase schedule, in order.
    pub phases: Vec<Phase>,
}

/// A parse failure: the offending line (1-based; 0 for whole-spec errors)
/// and an actionable message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScenarioParseError {
    /// 1-based line number, or 0 when the spec as a whole is invalid.
    pub line: usize,
    /// What went wrong and what was expected.
    pub message: String,
}

impl std::fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "scenario spec: {}", self.message)
        } else {
            write!(f, "scenario spec line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScenarioParseError {}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn err(line: usize, message: impl Into<String>) -> ScenarioParseError {
    ScenarioParseError { line, message: message.into() }
}

/// Parses one numeric token, naming the directive and argument on failure.
fn num<T: std::str::FromStr>(
    line: usize,
    directive: &str,
    what: &str,
    token: &str,
) -> Result<T, ScenarioParseError> {
    token.parse().map_err(|_| err(line, format!("`{directive}` expects {what}, got {token:?}")))
}

fn rate(line: usize, directive: &str, what: &str, token: &str) -> Result<f64, ScenarioParseError> {
    let value: f64 = num(line, directive, what, token)?;
    if !(0.0..=1.0).contains(&value) {
        return Err(err(line, format!("`{directive}` {what} {value} is outside [0, 1]")));
    }
    Ok(value)
}

fn set_once<T>(
    slot: &mut Option<T>,
    value: T,
    line: usize,
    directive: &str,
) -> Result<(), ScenarioParseError> {
    if slot.is_some() {
        return Err(err(line, format!("duplicate `{directive}` directive")));
    }
    *slot = Some(value);
    Ok(())
}

fn expect_args(
    line: usize,
    directive: &str,
    usage: &str,
    args: &[&str],
    want: usize,
) -> Result<(), ScenarioParseError> {
    if args.len() != want {
        return Err(err(
            line,
            format!("`{directive}` takes {want} argument(s): `{usage}` (got {})", args.len()),
        ));
    }
    Ok(())
}

fn parse_fault(line: usize, kind: &str, args: &[&str]) -> Result<FaultSpec, ScenarioParseError> {
    match kind {
        "uniform" => {
            expect_args(line, "phase … uniform", "uniform <rate>", args, 1)?;
            Ok(FaultSpec::Uniform { rate: rate(line, "uniform", "rate", args[0])? })
        }
        "bursty" => {
            expect_args(
                line,
                "phase … bursty",
                "bursty <to_bad> <to_good> <loss_good> <loss_bad>",
                args,
                4,
            )?;
            let to_bad = rate(line, "bursty", "to_bad", args[0])?;
            let to_good = rate(line, "bursty", "to_good", args[1])?;
            if to_bad + to_good <= 0.0 {
                return Err(err(
                    line,
                    "`bursty` needs to_bad + to_good > 0 (a dead channel has no stationary state)",
                ));
            }
            Ok(FaultSpec::Bursty {
                to_bad,
                to_good,
                loss_good: rate(line, "bursty", "loss_good", args[2])?,
                loss_bad: rate(line, "bursty", "loss_bad", args[3])?,
            })
        }
        "partition" => {
            expect_args(line, "phase … partition", "partition <regions> <sever> <base>", args, 3)?;
            let regions: u64 = num(line, "partition", "an integer region count", args[0])?;
            if regions < 2 {
                return Err(err(
                    line,
                    format!("`partition` needs at least 2 regions, got {regions}"),
                ));
            }
            Ok(FaultSpec::Partition {
                regions,
                sever: rate(line, "partition", "sever rate", args[1])?,
                base: rate(line, "partition", "base rate", args[2])?,
            })
        }
        "perlink" => {
            expect_args(
                line,
                "phase … perlink",
                "perlink <salt> <bad_fraction> <good_rate> <bad_rate>",
                args,
                4,
            )?;
            Ok(FaultSpec::PerLink {
                salt: num(line, "perlink", "an integer salt", args[0])?,
                bad_fraction: rate(line, "perlink", "bad_fraction", args[1])?,
                good_rate: rate(line, "perlink", "good_rate", args[2])?,
                bad_rate: rate(line, "perlink", "bad_rate", args[3])?,
            })
        }
        "capacity" => {
            expect_args(
                line,
                "phase … capacity",
                "capacity <salt> <slow_fraction> <period> <base>",
                args,
                4,
            )?;
            let period: u64 = num(line, "capacity", "an integer period", args[2])?;
            if period < 2 {
                return Err(err(line, format!("`capacity` period must be ≥ 2, got {period}")));
            }
            Ok(FaultSpec::Capacity {
                salt: num(line, "capacity", "an integer salt", args[0])?,
                slow_fraction: rate(line, "capacity", "slow_fraction", args[1])?,
                period,
                base: rate(line, "capacity", "base rate", args[3])?,
            })
        }
        "victims" => {
            expect_args(line, "phase … victims", "victims <count> <victim_rate> <base>", args, 3)?;
            let count: usize = num(line, "victims", "an integer victim count", args[0])?;
            if count == 0 {
                return Err(err(line, "`victims` needs at least one victim"));
            }
            Ok(FaultSpec::Victims {
                count,
                victim_rate: rate(line, "victims", "victim_rate", args[1])?,
                base: rate(line, "victims", "base rate", args[2])?,
            })
        }
        other => Err(err(
            line,
            format!(
                "unknown fault model {other:?} — expected one of \
                 uniform, bursty, partition, perlink, capacity, victims"
            ),
        )),
    }
}

impl Scenario {
    /// Parses a scenario spec (the grammar in the module docs).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioParseError`] naming the offending line and what
    /// was expected there.
    pub fn parse(text: &str) -> Result<Self, ScenarioParseError> {
        let mut name: Option<String> = None;
        let mut n: Option<usize> = None;
        let mut view: Option<(usize, usize)> = None;
        let mut degree: Option<usize> = None;
        let mut replicates: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut burn_in: Option<usize> = None;
        let mut protocol: Option<ProtocolSpec> = None;
        let mut broadcast: Option<BroadcastSpec> = None;
        let mut phases: Vec<Phase> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut tokens = content.split_whitespace();
            let directive = tokens.next().expect("non-empty line has a first token");
            let args: Vec<&str> = tokens.collect();
            match directive {
                "scenario" => {
                    expect_args(line, "scenario", "scenario <name>", &args, 1)?;
                    let candidate = args[0];
                    if !candidate.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                    {
                        return Err(err(
                            line,
                            format!("scenario name {candidate:?} may only use [A-Za-z0-9_-]"),
                        ));
                    }
                    set_once(&mut name, candidate.to_string(), line, "scenario")?;
                }
                "n" => {
                    expect_args(line, "n", "n <nodes>", &args, 1)?;
                    let value: usize = num(line, "n", "an integer node count", args[0])?;
                    if value < 4 {
                        return Err(err(line, format!("`n` must be ≥ 4, got {value}")));
                    }
                    set_once(&mut n, value, line, "n")?;
                }
                "view" => {
                    expect_args(line, "view", "view <s> <d_L>", &args, 2)?;
                    let s: usize = num(line, "view", "an integer view size", args[0])?;
                    let d_l: usize = num(line, "view", "an integer lower threshold", args[1])?;
                    if let Err(e) = SfConfig::new(s, d_l) {
                        return Err(err(
                            line,
                            format!("`view {s} {d_l}` is not a legal config: {e}"),
                        ));
                    }
                    set_once(&mut view, (s, d_l), line, "view")?;
                }
                "degree" => {
                    expect_args(line, "degree", "degree <d0>", &args, 1)?;
                    let value: usize = num(line, "degree", "an integer outdegree", args[0])?;
                    if value < 2 || !value.is_multiple_of(2) {
                        return Err(err(
                            line,
                            format!("`degree` must be even and ≥ 2, got {value}"),
                        ));
                    }
                    set_once(&mut degree, value, line, "degree")?;
                }
                "replicates" => {
                    expect_args(line, "replicates", "replicates <r>", &args, 1)?;
                    let value: usize = num(line, "replicates", "an integer count", args[0])?;
                    if value == 0 {
                        return Err(err(line, "`replicates` must be at least 1"));
                    }
                    set_once(&mut replicates, value, line, "replicates")?;
                }
                "seed" => {
                    expect_args(line, "seed", "seed <u64>", &args, 1)?;
                    set_once(
                        &mut seed,
                        num(line, "seed", "an integer seed", args[0])?,
                        line,
                        "seed",
                    )?;
                }
                "burn_in" => {
                    expect_args(line, "burn_in", "burn_in <rounds>", &args, 1)?;
                    set_once(
                        &mut burn_in,
                        num(line, "burn_in", "an integer round count", args[0])?,
                        line,
                        "burn_in",
                    )?;
                }
                "protocol" => {
                    expect_args(line, "protocol", "protocol <name>", &args, 1)?;
                    let value = match args[0] {
                        "sandf" => ProtocolSpec::Sf,
                        "push_only" => ProtocolSpec::PushOnly,
                        "push_pull" => ProtocolSpec::PushPull,
                        "shuffle" => ProtocolSpec::Shuffle,
                        other => {
                            return Err(err(
                                line,
                                format!(
                                    "unknown protocol {other:?} — expected one of \
                                     sandf, push_only, push_pull, shuffle"
                                ),
                            ));
                        }
                    };
                    set_once(&mut protocol, value, line, "protocol")?;
                }
                "broadcast" => {
                    if args.len() < 2 || args.len() > 3 {
                        return Err(err(
                            line,
                            "`broadcast` expects `broadcast <fanout> <max_age> [pull]`",
                        ));
                    }
                    let fanout: usize = num(line, "broadcast", "an integer fanout", args[0])?;
                    if fanout == 0 {
                        return Err(err(line, "`broadcast` fanout must be at least 1"));
                    }
                    let max_age: u8 = num(line, "broadcast", "a max age in 0..=255", args[1])?;
                    let pull = match args.get(2) {
                        None => false,
                        Some(&"pull") => true,
                        Some(other) => {
                            return Err(err(
                                line,
                                format!("`broadcast` third argument must be `pull`, got {other:?}"),
                            ));
                        }
                    };
                    set_once(
                        &mut broadcast,
                        BroadcastSpec { fanout, max_age, pull },
                        line,
                        "broadcast",
                    )?;
                }
                "phase" => {
                    if args.len() < 2 {
                        return Err(err(
                            line,
                            "`phase` takes a duration and a fault model: `phase <rounds> <fault> <args...>`",
                        ));
                    }
                    let rounds: usize = num(line, "phase", "an integer round count", args[0])?;
                    if rounds == 0 {
                        return Err(err(line, "`phase` must last at least 1 round"));
                    }
                    let fault = parse_fault(line, args[1], &args[2..])?;
                    phases.push(Phase { rounds, fault, churn: None });
                }
                "churn" => {
                    expect_args(line, "churn", "churn <leaves> <joins>", &args, 2)?;
                    let Some(phase) = phases.last_mut() else {
                        return Err(err(line, "`churn` must follow a `phase` line"));
                    };
                    if phase.churn.is_some() {
                        return Err(err(line, "this phase already has a `churn` line"));
                    }
                    phase.churn = Some(ChurnSpec {
                        leaves: num(line, "churn", "an integer leave count", args[0])?,
                        joins: num(line, "churn", "an integer join count", args[1])?,
                    });
                }
                other => {
                    return Err(err(
                        line,
                        format!(
                            "unknown directive {other:?} — expected one of scenario, n, view, \
                             degree, replicates, seed, burn_in, protocol, broadcast, phase, churn"
                        ),
                    ));
                }
            }
        }

        let name = name.ok_or_else(|| err(0, "missing required `scenario <name>` directive"))?;
        let n = n.ok_or_else(|| err(0, "missing required `n <nodes>` directive"))?;
        let (view_size, lower_threshold) =
            view.ok_or_else(|| err(0, "missing required `view <s> <d_L>` directive"))?;
        if phases.is_empty() {
            return Err(err(0, "a scenario needs at least one `phase` line"));
        }
        let config = SfConfig::new(view_size, lower_threshold).expect("validated above");
        let degree = degree.unwrap_or_else(|| initial_degree(config, n));
        if degree > n.saturating_sub(2) {
            return Err(err(0, format!("`degree {degree}` does not fit an n = {n} system")));
        }
        for phase in &phases {
            if let FaultSpec::Victims { count, .. } = phase.fault {
                if count >= n {
                    return Err(err(
                        0,
                        format!("`victims {count}` must target fewer than all n = {n} nodes"),
                    ));
                }
            }
            if let Some(churn) = phase.churn {
                if churn.leaves + 4 > n {
                    return Err(err(
                        0,
                        format!(
                            "`churn {} …` would leave fewer than 4 of n = {n} nodes",
                            churn.leaves
                        ),
                    ));
                }
            }
        }
        Ok(Self {
            name,
            n,
            view_size,
            lower_threshold,
            degree,
            replicates: replicates.unwrap_or(3),
            seed: seed.unwrap_or(42),
            burn_in: burn_in.unwrap_or(0),
            protocol: protocol.unwrap_or_default(),
            broadcast,
            phases,
        })
    }

    /// The protocol configuration the spec names.
    #[must_use]
    pub fn config(&self) -> SfConfig {
        SfConfig::new(self.view_size, self.lower_threshold).expect("validated at parse time")
    }

    /// Compiles the phase schedule to a [`ScheduledFault`]: `burn_in`
    /// lossless rounds (when nonzero), then each phase over its absolute
    /// round window. `salt` decorrelates hash-derived maps across
    /// replicates.
    #[must_use]
    pub fn compile(&self, salt: u64) -> ScheduledFault {
        let mut schedule = Vec::with_capacity(self.phases.len() + 1);
        let mut start = self.burn_in as u64;
        if self.burn_in > 0 {
            schedule.push((
                start,
                PhaseFault::Uniform(UniformLoss::new(0.0).expect("0 is a legal rate")),
            ));
        }
        for phase in &self.phases {
            let end = start + phase.rounds as u64;
            schedule.push((end, phase.fault.build(start, phase.rounds as u64, salt)));
            start = end;
        }
        ScheduledFault::new(schedule)
    }

    /// The index of spec phase `i` inside the compiled schedule (the
    /// burn-in prepends a lossless phase when nonzero).
    #[must_use]
    pub fn schedule_index(&self, phase: usize) -> usize {
        phase + usize::from(self.burn_in > 0)
    }

    /// Circulant bootstrap views for the baseline protocols: node `i`
    /// points at the next `degree` ids around the ring — the same shape
    /// `topology::circulant` seeds the S&F engine with, so `protocol`
    /// changes the behavior, not the starting graph.
    fn ring_views(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        (0..self.n)
            .map(|i| {
                let view =
                    (1..=self.degree).map(|d| NodeId::new(((i + d) % self.n) as u64)).collect();
                (NodeId::new(i as u64), view)
            })
            .collect()
    }
}

impl std::fmt::Display for Scenario {
    /// The canonical printing: parsing the output yields a `Scenario`
    /// equal to `self`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "scenario {}", self.name)?;
        writeln!(f, "n {}", self.n)?;
        writeln!(f, "view {} {}", self.view_size, self.lower_threshold)?;
        writeln!(f, "degree {}", self.degree)?;
        writeln!(f, "replicates {}", self.replicates)?;
        writeln!(f, "seed {}", self.seed)?;
        writeln!(f, "burn_in {}", self.burn_in)?;
        // Printed only when non-default, so pre-existing S&F specs (and
        // the recorded golden transcripts that echo them) are unchanged;
        // the round trip is still the identity because the parse default
        // is `sandf`.
        if self.protocol != ProtocolSpec::Sf {
            writeln!(f, "protocol {}", self.protocol.kind())?;
        }
        // Same non-default rule as `protocol`: absent directives stay
        // absent, so pre-PR-10 specs and goldens print byte-identically.
        if let Some(b) = self.broadcast {
            write!(f, "broadcast {} {}", b.fanout, b.max_age)?;
            if b.pull {
                write!(f, " pull")?;
            }
            writeln!(f)?;
        }
        for phase in &self.phases {
            writeln!(f)?;
            write!(f, "phase {} ", phase.rounds)?;
            match phase.fault {
                FaultSpec::Uniform { rate } => writeln!(f, "uniform {rate}")?,
                FaultSpec::Bursty { to_bad, to_good, loss_good, loss_bad } => {
                    writeln!(f, "bursty {to_bad} {to_good} {loss_good} {loss_bad}")?;
                }
                FaultSpec::Partition { regions, sever, base } => {
                    writeln!(f, "partition {regions} {sever} {base}")?;
                }
                FaultSpec::PerLink { salt, bad_fraction, good_rate, bad_rate } => {
                    writeln!(f, "perlink {salt} {bad_fraction} {good_rate} {bad_rate}")?;
                }
                FaultSpec::Capacity { salt, slow_fraction, period, base } => {
                    writeln!(f, "capacity {salt} {slow_fraction} {period} {base}")?;
                }
                FaultSpec::Victims { count, victim_rate, base } => {
                    writeln!(f, "victims {count} {victim_rate} {base}")?;
                }
            }
            if let Some(churn) = phase.churn {
                writeln!(f, "churn {} {}", churn.leaves, churn.joins)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// One phase's row of the envelope table.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Phase index.
    pub phase: usize,
    /// Fault-model keyword.
    pub fault: &'static str,
    /// Rounds the phase governed.
    pub rounds: usize,
    /// The phase's effective (marginal) loss rate.
    pub effective_rate: f64,
    /// Degree-MC predicted mean indegree at the effective rate, if the
    /// chain converges there.
    pub mc_mean: Option<f64>,
    /// Degree-MC predicted indegree standard deviation.
    pub mc_std: Option<f64>,
    /// Lemma 6.10 ceiling on the stale-entry fraction at phase end (only
    /// for phases whose churn removed nodes).
    pub decay_bound: Option<f64>,
    /// Measured mean indegree across replicates.
    pub mean_in: Summary,
    /// Measured indegree standard deviation.
    pub in_std: Summary,
    /// Measured per-send loss rate during the phase.
    pub loss_rate: Summary,
    /// Fraction of scheduled steps skipped by capacity gating.
    pub skipped_frac: Summary,
    /// Fraction of view entries naming departed nodes at phase end.
    pub stale_frac: Summary,
    /// Fraction of replicates ending the phase weakly connected.
    pub connected: Summary,
    /// Rumor-layer columns (only when the spec carries `broadcast`).
    pub broadcast: Option<BroadcastOutcome>,
}

/// The rumor-layer columns of a broadcast-enabled scenario row, measured
/// over the target phase.
#[derive(Clone, Debug)]
pub struct BroadcastOutcome {
    /// Live-set coverage at phase end.
    pub coverage: Summary,
    /// Rounds to 99 % coverage (`rounds + 1` sentinel when unreached).
    pub to_99: Summary,
    /// Rumor messages per live node.
    pub msgs_per_node: Summary,
}

impl ScenarioOutcome {
    /// Absolute gap between the measured mean indegree and the degree-MC
    /// prediction (`None` when the chain did not converge).
    #[must_use]
    pub fn mc_gap(&self) -> Option<f64> {
        self.mc_mean.map(|m| (self.mean_in.mean - m).abs())
    }

    /// Whether the measured mean indegree sits inside the CI band around
    /// the degree-MC prediction: gap ≤ ci95 + `tolerance`.
    #[must_use]
    pub fn within_envelope(&self, tolerance: f64) -> Option<bool> {
        self.mc_gap().map(|gap| gap <= self.mean_in.ci95 + tolerance)
    }
}

/// The result of running one scenario: the per-phase envelope rows.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Replicates behind every row.
    pub replicates: usize,
    /// One row per phase, in order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ScenarioReport {
    /// Renders the envelope table: per phase, the key columns, the
    /// degree-MC and Lemma 6.10 predictions, the measured
    /// `<metric>_mean`/`<metric>_ci95` pairs, and an `in`/`OUT` verdict on
    /// the indegree envelope at `tolerance`. Byte-stable across runs and
    /// thread counts.
    #[must_use]
    pub fn to_tsv(&self, tolerance: f64) -> String {
        let mut out = String::new();
        let mut cols = vec![
            "phase".to_string(),
            "fault".to_string(),
            "rounds".to_string(),
            "eff_rate".to_string(),
            "mc_mean".to_string(),
            "mc_std".to_string(),
            "decay_bound".to_string(),
        ];
        for metric in SCENARIO_METRICS {
            cols.push(format!("{metric}_mean"));
            cols.push(format!("{metric}_ci95"));
        }
        let has_broadcast = self.outcomes.iter().any(|o| o.broadcast.is_some());
        if has_broadcast {
            for metric in &SCENARIO_BROADCAST_METRICS[SCENARIO_METRICS.len()..] {
                cols.push(format!("{metric}_mean"));
                cols.push(format!("{metric}_ci95"));
            }
        }
        cols.push("mc_gap".to_string());
        cols.push("verdict".to_string());
        out.push_str(&cols.join("\t"));
        out.push('\n');
        let opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), fmt);
        for row in &self.outcomes {
            let mut fields = vec![
                row.phase.to_string(),
                row.fault.to_string(),
                row.rounds.to_string(),
                fmt(row.effective_rate),
                opt(row.mc_mean),
                opt(row.mc_std),
                opt(row.decay_bound),
            ];
            for summary in [
                &row.mean_in,
                &row.in_std,
                &row.loss_rate,
                &row.skipped_frac,
                &row.stale_frac,
                &row.connected,
            ] {
                fields.push(fmt(summary.mean));
                fields.push(fmt(summary.ci95));
            }
            if has_broadcast {
                if let Some(b) = &row.broadcast {
                    for summary in [&b.coverage, &b.to_99, &b.msgs_per_node] {
                        fields.push(fmt(summary.mean));
                        fields.push(fmt(summary.ci95));
                    }
                } else {
                    fields.extend((0..6).map(|_| "-".to_string()));
                }
            }
            fields.push(opt(row.mc_gap()));
            fields.push(match row.within_envelope(tolerance) {
                None => "-".to_string(),
                Some(true) => "in".to_string(),
                Some(false) => "OUT".to_string(),
            });
            out.push_str(&fields.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// One sweep cell: a phase of the scenario (replicates replay the run from
/// round 0 through this phase's end).
struct PhaseCell<'a> {
    scenario: &'a Scenario,
    phase: usize,
}

impl SweepCell for PhaseCell<'_> {
    fn key(&self) -> String {
        format!("{}/phase={}", self.scenario.name, self.phase)
    }
}

/// Runs one replicate of `scenario` through phase `target` inclusive on the
/// par engine, returning the [`SCENARIO_METRICS`] vector measured at the
/// end of the target phase. The `protocol` directive picks which
/// [`sandf_sim::ProtocolBehavior`] drives the slots; every protocol runs on
/// the same par engine, so thread invariance holds for the whole zoo.
fn run_replicate(
    scenario: &Scenario,
    target: usize,
    threads: usize,
    rng: &mut StdRng,
    counters: &FaultCounters,
    registry: &MetricsRegistry,
) -> Vec<f64> {
    let fault_salt = rng.next_u64();
    let sim_seed = rng.next_u64();
    let config = scenario.config();
    let fault = scenario.compile(fault_salt);
    // Baseline gossip fanout matches `sweeps::zoo_engine_table` so the two
    // surfaces stay comparable.
    const GOSSIP: usize = 3;
    match scenario.protocol {
        ProtocolSpec::Sf => {
            let nodes = topology::circulant(scenario.n, config, scenario.degree);
            let sim = ParSimulation::new(nodes, fault, sim_seed, threads);
            drive_replicate(sim, scenario, target, sim_seed, counters, registry)
        }
        ProtocolSpec::PushOnly => {
            let sim = ParSimulation::from_views(
                PushOnlyBehavior,
                config,
                scenario.ring_views(),
                fault,
                sim_seed,
                threads,
            );
            drive_replicate(sim, scenario, target, sim_seed, counters, registry)
        }
        ProtocolSpec::PushPull => {
            let sim = ParSimulation::from_views(
                PushPullBehavior::new(GOSSIP),
                config,
                scenario.ring_views(),
                fault,
                sim_seed,
                threads,
            );
            drive_replicate(sim, scenario, target, sim_seed, counters, registry)
        }
        ProtocolSpec::Shuffle => {
            let sim = ParSimulation::from_views(
                ShuffleBehavior::new(GOSSIP),
                config,
                scenario.ring_views(),
                fault,
                sim_seed,
                threads,
            );
            drive_replicate(sim, scenario, target, sim_seed, counters, registry)
        }
    }
}

/// The replicate body, generic over the unified [`Engine`] trait: burn-in,
/// then per phase churn → victim re-aim → (at the target) stats reset →
/// rounds, then the [`SCENARIO_METRICS`] measurement.
fn drive_replicate<E: Engine<Fault = ScheduledFault>>(
    mut sim: E,
    scenario: &Scenario,
    target: usize,
    sim_seed: u64,
    counters: &FaultCounters,
    registry: &MetricsRegistry,
) -> Vec<f64> {
    sim.run_rounds(scenario.burn_in);
    counters.replicates.inc();

    let mut layer: Option<BroadcastLayer> = None;
    for (p, phase) in scenario.phases.iter().enumerate().take(target + 1) {
        if let Some(churn) = phase.churn {
            let mut live = sim.live_ids();
            live.sort_unstable();
            for _ in 0..churn.leaves {
                if live.len() <= 4 {
                    break;
                }
                let id = live.remove(0);
                assert!(sim.leave(id), "id came from live_ids");
                counters.churn_leaves.inc();
            }
            for _ in 0..churn.joins {
                let sponsor = *live.last().expect("at least 4 nodes stay live");
                if let Ok(joiner) = sim.join_via(sponsor) {
                    live.push(joiner);
                    counters.churn_joins.inc();
                }
            }
        }
        let mut victims: Vec<NodeId> = Vec::new();
        if let FaultSpec::Victims { count, .. } = phase.fault {
            let graph = sim.graph();
            let mut by_degree: Vec<(usize, NodeId)> =
                graph.ids().iter().map(|&id| (graph.in_degree(id).unwrap_or(0), id)).collect();
            // Highest indegree first; ties broken by id for determinism.
            by_degree.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            victims = by_degree.iter().take(count).map(|&(_, id)| id).collect();
            let index = scenario.schedule_index(p);
            let aimed = victims.clone();
            sim.update_fault(|fault| {
                if let PhaseFault::Victims(v) = fault.phase_mut(index) {
                    v.set_victims(&aimed);
                }
            });
            counters.retargets.inc();
        }
        if p == target {
            sim.reset_stats();
            if let Some(spec) = scenario.broadcast {
                let channel = rumor_channel_for(&phase.fault, scenario.n, &victims);
                let mut l = BroadcastLayer::with_channel(sim_seed, spec.config(), channel);
                l.attach_metrics(registry);
                let origin = sim.live_ids().into_iter().min().expect("at least 4 nodes stay live");
                l.seed_rumor_at(origin);
                layer = Some(l);
            }
        }
        if let Some(l) = &mut layer {
            // The rumor rides the target phase round by round.
            for _ in 0..phase.rounds {
                sim.round();
                l.step(&sim);
            }
        } else {
            sim.run_rounds(phase.rounds);
        }
        counters.rounds.add(phase.rounds as u64);
    }

    let graph = sim.graph();
    let stats = sim.stats();
    let degrees = DegreeStats::from_samples(&graph.in_degrees());
    let edges = graph.edge_count();
    let steps = stats.actions + stats.skipped;
    let mut values = vec![
        degrees.mean,
        degrees.std_dev(),
        if stats.sent == 0 { 0.0 } else { stats.lost as f64 / stats.sent as f64 },
        if steps == 0 { 0.0 } else { stats.skipped as f64 / steps as f64 },
        if edges == 0 { 0.0 } else { graph.dangling_edge_count() as f64 / edges as f64 },
        f64::from(u8::from(graph.is_weakly_connected())),
    ];
    if let Some(l) = &layer {
        let report = l.report();
        let rounds = scenario.phases[target].rounds;
        values.push(report.coverage);
        values.push(report.to_99.map_or((rounds + 1) as f64, |v| v as f64));
        values.push(report.messages_per_node);
    }
    values
}

/// The `sim.fault.*` observability counters a scenario run maintains.
struct FaultCounters {
    replicates: sandf_obs::CounterHandle,
    rounds: sandf_obs::CounterHandle,
    churn_leaves: sandf_obs::CounterHandle,
    churn_joins: sandf_obs::CounterHandle,
    retargets: sandf_obs::CounterHandle,
}

impl FaultCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            replicates: registry.counter("sim.fault.replicates"),
            rounds: registry.counter("sim.fault.rounds"),
            churn_leaves: registry.counter("sim.fault.churn_leaves"),
            churn_joins: registry.counter("sim.fault.churn_joins"),
            retargets: registry.counter("sim.fault.victim_retargets"),
        }
    }
}

/// The Lemma 6.10 stale-fraction ceiling for a phase: each departed id had
/// at most `s` live instances at departure, each surviving `rounds` rounds
/// with probability at most the per-round survival factor compounded — so
/// the expected stale entries are bounded by `leaves · s · bound` over a
/// floor of `n · d_L / 2` remaining entries.
fn decay_ceiling(scenario: &Scenario, phase: &Phase) -> Option<f64> {
    let leaves = phase.churn.map_or(0, |c| c.leaves);
    if leaves == 0 {
        return None;
    }
    let loss = phase.fault.effective_rate(scenario.n);
    // δ = 0: omitting the duplication correction only weakens (raises) the
    // ceiling, keeping it sound.
    if loss >= 1.0 {
        return None;
    }
    let bound = *leave_survival_bound(
        loss,
        0.0,
        scenario.lower_threshold,
        scenario.view_size,
        phase.rounds,
    )
    .last()
    .expect("phase lasts at least one round");
    let stale_ceiling = leaves as f64 * scenario.view_size as f64 * bound;
    let entry_floor = scenario.n as f64 * scenario.lower_threshold as f64 / 2.0;
    Some((stale_ceiling / entry_floor).min(1.0))
}

/// The degree-MC prediction `(mean_in, std_in)` at a config and loss
/// rate, memoized process-wide: a multi-phase scenario revisits the same
/// handful of rates (and the golden tests revisit them across thread
/// counts), while a solve costs ~1 s in a debug build.
fn degree_mc_prediction(config: SfConfig, rate: f64) -> Option<(f64, f64)> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};
    type Cache = Mutex<HashMap<(usize, usize, u64), Option<(f64, f64)>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let key = (config.view_size(), config.lower_threshold(), rate.to_bits());
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // Recover rather than propagate a poisoned cache: a replicate thread
    // that panics elsewhere must not turn every later prediction lookup
    // into a second panic (the map is never left mid-update).
    if let Some(hit) = cache.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
        return *hit;
    }
    let result = DegreeMc::solve(DegreeMcParams::new(config, rate))
        .ok()
        .map(|mc| (mc.mean_in(), mc.std_in()));
    cache.lock().unwrap_or_else(PoisonError::into_inner).insert(key, result);
    result
}

/// Runs `scenario` as a replicated sweep — one cell per phase, each
/// replicate replaying from round 0 through its phase on the par engine
/// with `threads` worker threads — and assembles the envelope report.
/// `sim.fault.*` counters land in `registry`.
///
/// The report is deterministic: thread counts (sweep workers and engine
/// threads alike) change wall-clock, never a byte of
/// [`ScenarioReport::to_tsv`].
#[must_use]
pub fn run_scenario(
    scenario: &Scenario,
    threads: usize,
    registry: &MetricsRegistry,
) -> ScenarioReport {
    let counters = FaultCounters::new(registry);
    let cells: Vec<PhaseCell<'_>> =
        (0..scenario.phases.len()).map(|phase| PhaseCell { scenario, phase }).collect();
    let spec = SweepSpec::new(cells, scenario.replicates, scenario.seed);
    let metrics: &'static [&'static str] =
        if scenario.broadcast.is_some() { SCENARIO_BROADCAST_METRICS } else { SCENARIO_METRICS };
    let results = spec.run(metrics, |cell, rng| {
        run_replicate(scenario, cell.phase, threads, rng, &counters, registry)
    });

    let config = scenario.config();
    let outcomes = scenario
        .phases
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            let rate = phase.fault.effective_rate(scenario.n);
            // The degree MC (§6.2) and the Lemma 6.10 decay bound model
            // S&F's send/duplicate dynamics; for the baseline protocols the
            // measured columns stand alone and the model columns print `-`.
            let is_sf = scenario.protocol == ProtocolSpec::Sf;
            let mc = if is_sf { degree_mc_prediction(config, rate) } else { None };
            ScenarioOutcome {
                phase: i,
                fault: phase.fault.kind(),
                rounds: phase.rounds,
                effective_rate: rate,
                mc_mean: mc.map(|(mean, _)| mean),
                mc_std: mc.map(|(_, std)| std),
                decay_bound: if is_sf { decay_ceiling(scenario, phase) } else { None },
                mean_in: *results.summary(i, "mean_in"),
                in_std: *results.summary(i, "in_std"),
                loss_rate: *results.summary(i, "loss_rate"),
                skipped_frac: *results.summary(i, "skipped_frac"),
                stale_frac: *results.summary(i, "stale_frac"),
                connected: *results.summary(i, "connected"),
                broadcast: scenario.broadcast.map(|_| BroadcastOutcome {
                    coverage: *results.summary(i, "bcast_coverage"),
                    to_99: *results.summary(i, "bcast_to99"),
                    msgs_per_node: *results.summary(i, "bcast_msgs_per_node"),
                }),
            }
        })
        .collect();
    ScenarioReport { name: scenario.name.clone(), replicates: scenario.replicates, outcomes }
}

// ---------------------------------------------------------------------------
// Built-in scenario library
// ---------------------------------------------------------------------------

/// The built-in scenario specs the `scenario_run` binary executes when
/// given no arguments: one per fault family, at CI-friendly scale.
#[must_use]
pub fn builtin_specs() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "partition-heal",
            "scenario partition-heal\n\
             n 96\n\
             view 16 6\n\
             degree 10\n\
             replicates 5\n\
             seed 2009\n\
             burn_in 10\n\
             \n\
             phase 30 uniform 0.01\n\
             phase 20 partition 2 1 0.01\n\
             phase 30 uniform 0.01\n",
        ),
        (
            "weak-links",
            "scenario weak-links\n\
             n 96\n\
             view 16 6\n\
             degree 10\n\
             replicates 5\n\
             seed 2009\n\
             burn_in 10\n\
             \n\
             phase 30 perlink 7 0.25 0.005 0.6\n\
             phase 30 uniform 0.005\n",
        ),
        (
            "hub-loss",
            "scenario hub-loss\n\
             n 96\n\
             view 16 6\n\
             degree 10\n\
             replicates 5\n\
             seed 2009\n\
             burn_in 10\n\
             \n\
             phase 30 uniform 0.01\n\
             phase 25 victims 6 0.9 0.01\n\
             churn 2 2\n\
             phase 25 uniform 0.01\n",
        ),
        (
            "slow-cohort",
            "scenario slow-cohort\n\
             n 96\n\
             view 16 6\n\
             degree 10\n\
             replicates 5\n\
             seed 2009\n\
             burn_in 10\n\
             \n\
             phase 30 capacity 3 0.3 4 0.02\n\
             phase 25 bursty 0.05 0.2 0.01 0.5\n",
        ),
        (
            "shuffle-drain",
            // The §3.1 contrast through the fault DSL: the shuffle baseline
            // (deletes sent ids) under escalating uniform loss — its id
            // population drains where S&F's holds. Model columns print `-`:
            // the degree MC and decay bound are S&F-only.
            "scenario shuffle-drain\n\
             n 96\n\
             view 16 6\n\
             degree 10\n\
             replicates 5\n\
             seed 2009\n\
             burn_in 10\n\
             protocol shuffle\n\
             \n\
             phase 30 uniform 0.02\n\
             phase 30 uniform 0.10\n\
             churn 2 2\n\
             phase 30 uniform 0.02\n",
        ),
    ]
}

/// Renders one scenario end to end for the `scenario_run` binary: the spec
/// echoed as `#` commentary, the envelope TSV, and the `sim.fault.*`
/// exposition as trailing commentary.
#[must_use]
pub fn render_scenario(scenario: &Scenario, threads: usize) -> String {
    let registry = MetricsRegistry::new();
    let report = run_scenario(scenario, threads, &registry);
    let mut out = String::new();
    for line in scenario.to_string().lines() {
        if line.is_empty() {
            let _ = writeln!(out, "#");
        } else {
            let _ = writeln!(out, "# {line}");
        }
    }
    out.push_str(&report.to_tsv(MC_MEAN_TOLERANCE));
    for line in registry.render_prometheus().lines() {
        if line.contains("sim_fault") || line.contains("sim_broadcast") {
            let _ = writeln!(out, "# {line}");
        }
    }
    out
}

/// A scenario variant with the base seed replaced — the shape the golden
/// determinism tests sweep.
#[must_use]
pub fn with_seed(spec: &str, seed: u64) -> Scenario {
    let mut scenario = Scenario::parse(spec).expect("builtin specs parse");
    scenario.seed = seed;
    scenario
}

/// A stable hash of a report's TSV — handy for quick cross-machine
/// comparisons without shipping the table.
#[must_use]
pub fn tsv_fingerprint(tsv: &str) -> u64 {
    fnv1a64(tsv.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> String {
        "scenario tiny\nn 24\nview 12 4\ndegree 6\nreplicates 2\nseed 7\nburn_in 2\n\n\
         phase 4 uniform 0.05\nphase 3 partition 2 1 0.02\nchurn 1 1\n"
            .to_string()
    }

    #[test]
    fn parses_the_tiny_spec() {
        let s = Scenario::parse(&tiny_spec()).expect("parses");
        assert_eq!(s.name, "tiny");
        assert_eq!(s.n, 24);
        assert_eq!((s.view_size, s.lower_threshold), (12, 4));
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[1].churn, Some(ChurnSpec { leaves: 1, joins: 1 }));
    }

    #[test]
    fn print_parse_is_identity() {
        let s = Scenario::parse(&tiny_spec()).expect("parses");
        let reparsed = Scenario::parse(&s.to_string()).expect("canonical printing parses");
        assert_eq!(s, reparsed);
    }

    #[test]
    fn every_builtin_parses_and_round_trips() {
        for (name, spec) in builtin_specs() {
            let s = Scenario::parse(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(s.name, *name);
            assert_eq!(Scenario::parse(&s.to_string()).expect("round-trips"), s);
        }
    }

    #[test]
    fn compile_places_phase_windows_after_burn_in() {
        let s = Scenario::parse(&tiny_spec()).expect("parses");
        let schedule = s.compile(0);
        // Lossless burn-in, then the two phases.
        assert_eq!(schedule.phases().len(), 3);
        assert_eq!(schedule.phases()[0].0, 2);
        assert_eq!(schedule.phases()[1].0, 6);
        assert_eq!(schedule.phases()[2].0, 9);
        assert_eq!(s.schedule_index(1), 2);
        // The partition window is the phase's own rounds.
        let PhaseFault::Partition(p) = &schedule.phases()[2].1 else {
            panic!("expected a partition phase");
        };
        assert!(p.active_in(6) && p.active_in(8) && !p.active_in(9) && !p.active_in(5));
    }

    #[test]
    fn effective_rates_are_marginals() {
        let half = FaultSpec::Partition { regions: 2, sever: 1.0, base: 0.0 };
        assert!((half.effective_rate(96) - 0.5).abs() < 1e-12);
        let mix = FaultSpec::PerLink { salt: 0, bad_fraction: 0.25, good_rate: 0.0, bad_rate: 0.8 };
        assert!((mix.effective_rate(96) - 0.2).abs() < 1e-12);
        let vic = FaultSpec::Victims { count: 24, victim_rate: 0.5, base: 0.0 };
        assert!((vic.effective_rate(96) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn runner_produces_one_row_per_phase_and_is_thread_invariant() {
        let s = Scenario::parse(&tiny_spec()).expect("parses");
        let a = run_scenario(&s, 1, &MetricsRegistry::new());
        let b = run_scenario(&s, 3, &MetricsRegistry::new());
        assert_eq!(a.outcomes.len(), 2);
        assert_eq!(
            a.to_tsv(MC_MEAN_TOLERANCE),
            b.to_tsv(MC_MEAN_TOLERANCE),
            "engine thread count leaked into the report"
        );
    }

    #[test]
    fn protocol_directive_parses_and_round_trips() {
        let spec = tiny_spec().replace("burn_in 2\n", "burn_in 2\nprotocol shuffle\n");
        let s = Scenario::parse(&spec).expect("parses");
        assert_eq!(s.protocol, ProtocolSpec::Shuffle);
        let printed = s.to_string();
        assert!(printed.contains("protocol shuffle"), "non-default protocol must print");
        assert_eq!(Scenario::parse(&printed).expect("round-trips"), s);
    }

    #[test]
    fn default_protocol_is_sandf_and_stays_unprinted() {
        let s = Scenario::parse(&tiny_spec()).expect("parses");
        assert_eq!(s.protocol, ProtocolSpec::Sf);
        // Keeping the default implicit keeps the pr6 golden transcripts
        // (which echo the canonical printing) byte-identical.
        assert!(!s.to_string().contains("protocol"));
    }

    #[test]
    fn rejects_unknown_protocol() {
        let spec = tiny_spec().replace("burn_in 2\n", "protocol chord\n");
        let error = Scenario::parse(&spec).expect_err("unknown protocol must be rejected");
        assert!(error.message.contains("chord") && error.message.contains("push_pull"));
    }

    #[test]
    fn baseline_protocols_run_thread_invariantly_without_model_columns() {
        let spec = tiny_spec().replace("burn_in 2\n", "burn_in 2\nprotocol shuffle\n");
        let s = Scenario::parse(&spec).expect("parses");
        let a = run_scenario(&s, 1, &MetricsRegistry::new());
        let b = run_scenario(&s, 3, &MetricsRegistry::new());
        assert_eq!(
            a.to_tsv(MC_MEAN_TOLERANCE),
            b.to_tsv(MC_MEAN_TOLERANCE),
            "engine thread count leaked into a baseline-protocol report"
        );
        for row in &a.outcomes {
            assert_eq!(row.mc_mean, None, "the degree MC models S&F only");
            assert_eq!(row.decay_bound, None, "the decay bound models S&F only");
            assert!(row.mean_in.mean > 0.0, "the shuffle run should still gossip");
        }
    }

    #[test]
    fn fault_counters_land_in_the_registry() {
        let s = Scenario::parse(&tiny_spec()).expect("parses");
        let registry = MetricsRegistry::new();
        let _ = run_scenario(&s, 1, &registry);
        // 2 phases × 2 replicates.
        assert_eq!(registry.counter_value("sim.fault.replicates"), Some(4));
        assert!(registry.counter_value("sim.fault.churn_leaves").unwrap_or(0) > 0);
    }

    fn broadcast_spec() -> String {
        "scenario tiny-bcast\nn 24\nview 12 4\ndegree 6\nreplicates 2\nseed 7\nburn_in 2\n\
         broadcast 2 255\n\nphase 20 uniform 0.05\nphase 4 partition 2 1 0.02\n"
            .to_string()
    }

    #[test]
    fn broadcast_directive_parses_prints_and_rejects_bad_args() {
        let s = Scenario::parse(&broadcast_spec()).expect("parses");
        assert_eq!(s.broadcast, Some(BroadcastSpec { fanout: 2, max_age: 255, pull: false }));
        assert_eq!(Scenario::parse(&s.to_string()).expect("round-trips"), s);
        assert!(s.to_string().contains("broadcast 2 255\n"));

        let pull = broadcast_spec().replace("broadcast 2 255", "broadcast 1 8 pull");
        let s = Scenario::parse(&pull).expect("parses");
        assert_eq!(s.broadcast, Some(BroadcastSpec { fanout: 1, max_age: 8, pull: true }));
        assert!(s.to_string().contains("broadcast 1 8 pull\n"));

        for bad in ["broadcast 0 255", "broadcast 1", "broadcast 1 256", "broadcast 1 8 push"] {
            let spec = broadcast_spec().replace("broadcast 2 255", bad);
            assert!(Scenario::parse(&spec).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn specs_without_broadcast_print_no_broadcast_line() {
        let s = Scenario::parse(&tiny_spec()).expect("parses");
        assert_eq!(s.broadcast, None);
        assert!(!s.to_string().contains("broadcast"));
    }

    #[test]
    fn broadcast_scenario_reports_rumor_columns_and_counters() {
        let s = Scenario::parse(&broadcast_spec()).expect("parses");
        let registry = MetricsRegistry::new();
        let report = run_scenario(&s, 1, &registry);
        let tsv = report.to_tsv(MC_MEAN_TOLERANCE);
        let header = tsv.lines().next().expect("header");
        assert!(header.contains("bcast_coverage_mean\tbcast_coverage_ci95"));
        assert!(header.contains("bcast_to99_mean"));
        assert!(header.contains("bcast_msgs_per_node_mean"));
        assert!(header.ends_with("mc_gap\tverdict"));
        let uniform = report.outcomes[0].broadcast.as_ref().expect("broadcast columns");
        // 20 rounds of fanout-2 push over a 24-node system under 5 % rumor
        // loss: the rumor saturates the live set.
        assert!(uniform.coverage.mean > 0.99, "coverage {}", uniform.coverage.mean);
        assert!(uniform.to_99.mean <= 20.0);
        assert!(registry.counter_value("sim.broadcast.sent").unwrap_or(0) > 0);
        assert!(registry.counter_value("sim.broadcast.rounds").unwrap_or(0) > 0);
        // The non-broadcast table is unchanged by the new columns.
        let plain = run_scenario(&Scenario::parse(&tiny_spec()).expect("parses"), 1, &registry);
        assert!(!plain.to_tsv(MC_MEAN_TOLERANCE).lines().next().expect("header").contains("bcast"));
    }
}
