//! The parallel replicated-sweep executor.
//!
//! Every quantitative claim in the paper's evaluation (Sections 6–7) is a
//! statistic over many independent runs. This module provides the
//! substrate those statistics stand on, once, for every bench binary:
//!
//! * a declarative [`SweepSpec`] — a parameter grid × a replicate count;
//! * a thread-pool executor fanning the `(cell, replicate)` tasks out over
//!   `std::thread` workers;
//! * **deterministic seeding**: each task's RNG seed is a stable FNV-1a
//!   hash of `(base_seed, cell key, replicate index)`, so results are
//!   bit-identical regardless of thread count or execution order, and
//!   adding a cell to a grid never perturbs the other cells' streams;
//! * a [`Summary`] aggregation layer (mean, sample std, 95% confidence
//!   interval, min, max per cell and metric) with TSV emission that
//!   extends the crate's `note`/`header`/`fmt` helpers.
//!
//! # Seeding scheme
//!
//! ```text
//! seed(cell, r) = FNV1a64("<base_seed>/<cell.key()>/<r>")
//! ```
//!
//! The key is textual so it is independent of struct layout; two cells
//! with equal keys get equal streams by construction (and a debug
//! assertion rejects duplicate keys in one spec).
//!
//! # Confidence intervals
//!
//! [`Summary::ci95`] is the half-width of the normal-approximation 95%
//! interval, `1.96 · std / √count` — the convention used throughout the
//! evaluation tables. With fewer than two samples it is zero.
//!
//! # Example
//!
//! ```
//! use sandf_bench::sweep::{Summary, SweepCell, SweepSpec};
//!
//! struct Cell { p: f64 }
//! impl SweepCell for Cell {
//!     fn key(&self) -> String { format!("p={}", self.p) }
//! }
//!
//! let spec = SweepSpec::new(vec![Cell { p: 0.1 }, Cell { p: 0.2 }], 4, 7);
//! let results = spec.run(&["doubled"], |cell, rng| {
//!     use rand::Rng;
//!     vec![cell.p * 2.0 + rng.gen_bool(0.5) as u64 as f64 * 0.0]
//! });
//! assert_eq!(results.summary(1, "doubled").mean, 0.4);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sandf_obs::Stopwatch;

use crate::fmt;

/// Stable FNV-1a 64-bit hash; the seed derivation primitive.
#[must_use]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One cell of a parameter grid. The key must be a stable, unique textual
/// encoding of the cell's parameters — it feeds the seed hash.
pub trait SweepCell {
    /// Stable textual key identifying this cell's parameters.
    fn key(&self) -> String;
}

/// The seed for one `(cell, replicate)` task under `base_seed`.
#[must_use]
pub fn replicate_seed(base_seed: u64, cell_key: &str, replicate: usize) -> u64 {
    fnv1a64(format!("{base_seed}/{cell_key}/{replicate}").as_bytes())
}

/// Aggregate statistics of one metric over a cell's replicates.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Summary {
    /// Number of samples aggregated.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for `n < 2`).
    pub std_dev: f64,
    /// Half-width of the 95% normal-approximation confidence interval of
    /// the mean: `1.96 · std_dev / √count` (0 for `n < 2`).
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Aggregates a sample set.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set — a sweep always has ≥ 1 replicate.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let (std_dev, ci95) = if count < 2 {
            (0.0, 0.0)
        } else {
            let var =
                samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64;
            let std_dev = var.sqrt();
            (std_dev, 1.96 * std_dev / (count as f64).sqrt())
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self { count, mean, std_dev, ci95, min, max }
    }
}

/// A declarative replicated sweep: a grid of cells, each run
/// `replicates` times with independent deterministic seeds.
#[derive(Clone, Debug)]
pub struct SweepSpec<P> {
    /// The parameter grid.
    pub cells: Vec<P>,
    /// Independent replicates per cell.
    pub replicates: usize,
    /// Base seed; distinct bases give fully independent sweeps.
    pub base_seed: u64,
}

impl<P: SweepCell + Sync> SweepSpec<P> {
    /// Builds a spec.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty, `replicates` is zero, or two cells
    /// share a key (which would silently duplicate random streams).
    #[must_use]
    pub fn new(cells: Vec<P>, replicates: usize, base_seed: u64) -> Self {
        assert!(!cells.is_empty(), "sweep needs at least one cell");
        assert!(replicates > 0, "sweep needs at least one replicate");
        let mut keys: Vec<String> = cells.iter().map(SweepCell::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "duplicate cell keys in sweep");
        Self { cells, replicates, base_seed }
    }

    /// Runs the sweep on the default pool: `SANDF_SWEEP_THREADS` if set,
    /// otherwise the machine's available parallelism.
    ///
    /// `run` receives the cell and the replicate's seeded RNG and returns
    /// one `f64` per metric name, in order. It must be deterministic given
    /// the RNG — everything else about execution (thread count, completion
    /// order) is guaranteed not to influence results.
    ///
    /// # Panics
    ///
    /// Panics if `run` returns a different number of values than
    /// `metrics` names, or if a worker panics.
    pub fn run<F>(&self, metrics: &'static [&'static str], run: F) -> SweepResults<'_, P>
    where
        F: Fn(&P, &mut StdRng) -> Vec<f64> + Sync,
    {
        self.run_with_threads(default_threads(), metrics, run)
    }

    /// Runs the sweep on exactly `threads` worker threads. Results are
    /// byte-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero, if `run` returns a different number of
    /// values than `metrics` names, or if a worker panics.
    pub fn run_with_threads<F>(
        &self,
        threads: usize,
        metrics: &'static [&'static str],
        run: F,
    ) -> SweepResults<'_, P>
    where
        F: Fn(&P, &mut StdRng) -> Vec<f64> + Sync,
    {
        assert!(threads > 0, "sweep needs at least one worker");
        let keys: Vec<String> = self.cells.iter().map(SweepCell::key).collect();
        let tasks = self.cells.len() * self.replicates;
        let workers = threads.min(tasks);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Vec<f64>, u64)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let keys = &keys;
                let run = &run;
                scope.spawn(move || loop {
                    let task = next.fetch_add(1, Ordering::Relaxed);
                    if task >= tasks {
                        break;
                    }
                    let cell = task / self.replicates;
                    let replicate = task % self.replicates;
                    let seed = replicate_seed(self.base_seed, &keys[cell], replicate);
                    let mut rng = StdRng::seed_from_u64(seed);
                    let watch = Stopwatch::start();
                    let values = run(&self.cells[cell], &mut rng);
                    let elapsed_ns = watch.elapsed_ns();
                    assert_eq!(
                        values.len(),
                        metrics.len(),
                        "replicate returned {} values for {} metrics",
                        values.len(),
                        metrics.len()
                    );
                    tx.send((task, values, elapsed_ns)).expect("collector outlives workers");
                });
            }
            drop(tx);

            // Reassemble in task order: aggregation never sees completion
            // order, which is what makes output thread-count-independent.
            // (Per-task wall-clock rides along but stays out of to_tsv.)
            let mut by_task: Vec<Option<(Vec<f64>, u64)>> = (0..tasks).map(|_| None).collect();
            for (task, values, elapsed_ns) in rx {
                by_task[task] = Some((values, elapsed_ns));
            }
            let samples: Vec<(Vec<f64>, u64)> = by_task
                .into_iter()
                .map(|v| v.expect("worker panicked before finishing its task"))
                .collect();

            let summaries: Vec<Vec<Summary>> = (0..self.cells.len())
                .map(|cell| {
                    (0..metrics.len())
                        .map(|metric| {
                            let column: Vec<f64> = (0..self.replicates)
                                .map(|r| samples[cell * self.replicates + r].0[metric])
                                .collect();
                            Summary::from_samples(&column)
                        })
                        .collect()
                })
                .collect();
            let timings: Vec<Summary> = (0..self.cells.len())
                .map(|cell| {
                    let column: Vec<f64> = (0..self.replicates)
                        .map(|r| samples[cell * self.replicates + r].1 as f64 / 1e6)
                        .collect();
                    Summary::from_samples(&column)
                })
                .collect();
            SweepResults {
                cells: &self.cells,
                replicates: self.replicates,
                metrics,
                summaries,
                timings,
            }
        })
    }
}

/// The worker count used by [`SweepSpec::run`].
#[must_use]
pub fn default_threads() -> usize {
    std::env::var("SANDF_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Aggregated results of one sweep: per cell, per metric, a [`Summary`].
#[derive(Clone, Debug)]
pub struct SweepResults<'a, P> {
    cells: &'a [P],
    replicates: usize,
    metrics: &'static [&'static str],
    summaries: Vec<Vec<Summary>>,
    /// Per-cell wall-clock per replicate, in milliseconds. Nondeterministic
    /// by nature, so kept out of [`to_tsv`](Self::to_tsv) (whose bytes are
    /// pinned by golden tests) and exposed separately.
    timings: Vec<Summary>,
}

impl<P> SweepResults<'_, P> {
    /// The grid the results cover.
    #[must_use]
    pub fn cells(&self) -> &[P] {
        self.cells
    }

    /// Replicates behind every summary.
    #[must_use]
    pub fn replicates(&self) -> usize {
        self.replicates
    }

    /// The metric names, in column order.
    #[must_use]
    pub fn metrics(&self) -> &[&'static str] {
        self.metrics
    }

    /// The summary for one cell index and metric name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown metric name or out-of-range cell.
    #[must_use]
    pub fn summary(&self, cell: usize, metric: &str) -> &Summary {
        let m = self
            .metrics
            .iter()
            .position(|&name| name == metric)
            .unwrap_or_else(|| panic!("unknown metric {metric:?}"));
        &self.summaries[cell][m]
    }

    /// Wall-clock statistics (milliseconds per replicate) for one cell.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range cell.
    #[must_use]
    pub fn timing(&self, cell: usize) -> &Summary {
        &self.timings[cell]
    }

    /// Renders a per-cell wall-clock table: the key columns, then
    /// `wall_ms_mean`, `wall_ms_ci95`, `wall_ms_min`, and `wall_ms_max`
    /// over the cell's replicates. Values are wall-clock and therefore
    /// **not** byte-stable across runs — this table is for performance
    /// reporting, never for golden tests (use [`to_tsv`](Self::to_tsv) for
    /// those).
    ///
    /// # Panics
    ///
    /// Panics if `key_fields` returns a different number of fields than
    /// `key_cols` has names.
    #[must_use]
    pub fn timing_tsv(&self, key_cols: &[&str], key_fields: impl Fn(&P) -> Vec<String>) -> String {
        let mut out = String::new();
        let mut cols: Vec<String> = key_cols.iter().map(ToString::to_string).collect();
        for col in ["wall_ms_mean", "wall_ms_ci95", "wall_ms_min", "wall_ms_max"] {
            cols.push(col.to_string());
        }
        out.push_str(&cols.join("\t"));
        out.push('\n');
        for (cell, timing) in self.cells.iter().zip(&self.timings) {
            let mut fields = key_fields(cell);
            assert_eq!(fields.len(), key_cols.len(), "key field/column mismatch");
            for value in [timing.mean, timing.ci95, timing.min, timing.max] {
                fields.push(fmt(value));
            }
            out.push_str(&fields.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Renders the full TSV table: `key_cols` columns describing each cell
    /// (produced by `key_fields`), then `<metric>_mean` and `<metric>_ci95`
    /// for every metric. Floats are formatted with the crate's [`fmt`], so
    /// the table is byte-stable across runs and thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `key_fields` returns a different number of fields than
    /// `key_cols` has names.
    #[must_use]
    pub fn to_tsv(&self, key_cols: &[&str], key_fields: impl Fn(&P) -> Vec<String>) -> String {
        let mut out = String::new();
        let mut cols: Vec<String> = key_cols.iter().map(ToString::to_string).collect();
        for metric in self.metrics {
            cols.push(format!("{metric}_mean"));
            cols.push(format!("{metric}_ci95"));
        }
        out.push_str(&cols.join("\t"));
        out.push('\n');
        for (cell, summaries) in self.cells.iter().zip(&self.summaries) {
            let mut fields = key_fields(cell);
            assert_eq!(fields.len(), key_cols.len(), "key field/column mismatch");
            for summary in summaries {
                fields.push(fmt(summary.mean));
                fields.push(fmt(summary.ci95));
            }
            out.push_str(&fields.join("\t"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    struct Cell(u64);
    impl SweepCell for Cell {
        fn key(&self) -> String {
            format!("cell={}", self.0)
        }
    }

    fn spec() -> SweepSpec<Cell> {
        SweepSpec::new((0..5).map(Cell).collect(), 8, 42)
    }

    fn noisy(cell: &Cell, rng: &mut StdRng) -> Vec<f64> {
        let noise = rng.gen_range(0u64..1000) as f64 / 1000.0;
        vec![cell.0 as f64 + noise, noise]
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let spec = spec();
        let reference = spec.run_with_threads(1, &["value", "noise"], noisy);
        for threads in [2, 3, 8] {
            let parallel = spec.run_with_threads(threads, &["value", "noise"], noisy);
            assert_eq!(reference.summaries, parallel.summaries, "{threads} threads diverged");
        }
    }

    #[test]
    fn seeds_differ_per_cell_and_replicate() {
        let a = replicate_seed(1, "cell=0", 0);
        let b = replicate_seed(1, "cell=0", 1);
        let c = replicate_seed(1, "cell=1", 0);
        let d = replicate_seed(2, "cell=0", 0);
        assert!(a != b && a != c && a != d && b != c);
        assert_eq!(a, replicate_seed(1, "cell=0", 0));
    }

    #[test]
    fn summaries_have_sane_shape() {
        let spec = spec();
        let results = spec.run_with_threads(4, &["value", "noise"], noisy);
        for cell in 0..5 {
            let s = results.summary(cell, "value");
            assert_eq!(s.count, 8);
            assert!(s.min >= cell as f64 && s.max < cell as f64 + 1.0);
            assert!(s.mean >= s.min && s.mean <= s.max);
            assert!(s.ci95 > 0.0, "noise should give a nonzero interval");
        }
    }

    #[test]
    fn tsv_lists_every_cell_with_ci_columns() {
        let spec = spec();
        let results = spec.run_with_threads(2, &["value", "noise"], noisy);
        let tsv = results.to_tsv(&["cell"], |c| vec![c.0.to_string()]);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "cell\tvalue_mean\tvalue_ci95\tnoise_mean\tnoise_ci95");
        assert!(lines[1].starts_with("0\t"));
    }

    #[test]
    fn timing_table_covers_every_cell() {
        let spec = spec();
        let results = spec.run_with_threads(2, &["value", "noise"], noisy);
        for cell in 0..5 {
            let t = results.timing(cell);
            assert_eq!(t.count, 8);
            assert!(t.mean >= 0.0 && t.min <= t.max);
        }
        let tsv = results.timing_tsv(&["cell"], |c| vec![c.0.to_string()]);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "cell\twall_ms_mean\twall_ms_ci95\twall_ms_min\twall_ms_max");
    }

    #[test]
    #[should_panic(expected = "duplicate cell keys")]
    fn duplicate_keys_are_rejected() {
        let _ = SweepSpec::new(vec![Cell(1), Cell(1)], 2, 0);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_are_rejected() {
        let _ = SweepSpec::new(vec![Cell(1)], 0, 0);
    }
}
