//! # sandf-bench — the paper's evaluation, regenerated
//!
//! One binary per figure/table of Gurevich & Keidar's evaluation (see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! paper-vs-measured comparisons):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig6_1` | Figure 6.1 — degree laws: analytical vs. degree-MC vs. binomial |
//! | `fig6_3` | Figure 6.3 — degree-MC distributions under loss (+ sim overlay) |
//! | `indegree_stats` | §6.4 — mean ± std of indegree per loss rate |
//! | `thresholds` | §6.3 — `(d_L, s)` selection sweep; §7.4 connectivity condition |
//! | `fig6_4` | Figure 6.4 — departed-id survival bound (+ sim overlay) |
//! | `join_leave` | §6.5 — Lemma 6.10 decay and Corollary 6.14 join integration |
//! | `independence` | §7.4 — measured dependent fraction vs. `2(ℓ+δ)` bound |
//! | `temporal` | §7.5 — edge-overlap decay vs. `O(s log n)`; `τ_ε` table |
//! | `uniformity` | Lemma 7.6 — χ² of id representation over a long run |
//! | `exact_uniform` | Lemma 7.5 — exact tiny-system enumeration |
//! | `baseline_compare` | §3.1 — S&F vs. shuffle vs. push-pull vs. push-only under loss |
//!
//! All binaries print TSV to stdout (self-describing headers, `#`-prefixed
//! commentary) and take no arguments; seeds are fixed so output is
//! reproducible.
//!
//! ## The replicated-sweep executor
//!
//! Stochastic experiments run on the [`sweep`] executor: a [`sweep::SweepSpec`]
//! declares a parameter grid × a replicate count, a thread pool fans the
//! `(cell, replicate)` tasks out, and each task's RNG seed is the stable
//! hash `FNV1a64("<base_seed>/<cell key>/<replicate>")` — so tables are
//! **bit-identical regardless of thread count or execution order**, and
//! editing the grid never perturbs other cells' random streams. Results
//! aggregate through [`sweep::Summary`] (mean, sample std, 95% CI, min,
//! max), and [`sweep::SweepResults::to_tsv`] emits `<metric>_mean` /
//! `<metric>_ci95` columns.
//!
//! The measurement cores of `indegree_stats`, `loss_ablation`,
//! `thresholds`, `baseline_compare`, `churn_sweep`, and `uniformity` live
//! in [`sweeps`] as library functions with explicit scale parameters; the
//! binaries call them at paper scale, the integration tests at toy scale
//! (see `tests/golden_indegree.rs` and `tests/sweep_determinism.rs`).
//! `EXPERIMENTS.md` documents the seeding scheme, the CI formula, and how
//! to add a sweep. Thread count can be pinned with `SANDF_SWEEP_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod obsrep;
pub mod perf;
pub mod scenario;
pub mod sweep;
pub mod sweeps;

/// Prints a `#`-prefixed commentary line.
pub fn note(text: &str) {
    println!("# {text}");
}

/// Prints a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Formats a float compactly for TSV output.
#[must_use]
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 0.001 {
        format!("{x:.6}")
    } else {
        format!("{x:.3e}")
    }
}
