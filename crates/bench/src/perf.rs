//! The `perf_smoke` measurement core: one large-`n` run, one
//! machine-readable JSON report.
//!
//! Every PR extends the repo's performance trajectory by committing a
//! `BENCH_PR<k>.json` produced by the `perf_smoke` binary (see
//! `EXPERIMENTS.md` § Performance methodology). The report carries the
//! scale (`nodes` × `rounds`), per-phase wall-clock taken from
//! `sandf-obs` span histograms, the end-to-end steps/sec throughput, peak
//! RSS read from `/proc/self/status`, and the run's [`SimStats`] — the
//! stats double as a determinism fingerprint, since the flat and classic
//! engines must produce identical counters for identical seeds, and the
//! par engine identical counters for any thread count.
//!
//! The JSON is hand-rolled (the workspace deliberately has no serde);
//! [`PerfReport::to_json`] emits a stable key order so diffs between PRs
//! stay readable.

use sandf_baselines::{BaselineHarness, ShuffleBehavior, ShuffleNode};
use sandf_core::{NodeId, SfConfig};
use sandf_obs::{duration_buckets, MetricsRegistry, SpanTimer, Stopwatch};
use sandf_sim::{
    topology, Engine, FlatSimulation, ParSimulation, SimStats, Simulation, UniformLoss,
};

use crate::sweeps::initial_degree;

/// Which engine a perf run drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PerfEngine {
    /// The struct-of-arrays fast path ([`FlatSimulation`]) — the default.
    Flat,
    /// The per-node reference engine ([`Simulation`]), for comparison runs.
    Classic,
    /// The sharded multi-threaded engine ([`ParSimulation`]); honours
    /// [`PerfSmokeConfig::threads`].
    Par,
}

impl PerfEngine {
    /// The name used in the JSON report and on the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Flat => "flat",
            Self::Classic => "classic",
            Self::Par => "par",
        }
    }
}

/// Which protocol behavior a perf run drives through the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PerfProtocol {
    /// Send & Forget — the default, supported by every engine.
    Sf,
    /// The shuffle baseline ([`ShuffleBehavior`] with gossip size 3) on
    /// the arena engines; the classic engine is S&F-only.
    Shuffle,
}

impl PerfProtocol {
    /// The name used in the JSON report and on the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Sf => "sandf",
            Self::Shuffle => "shuffle",
        }
    }
}

/// Scale and parameters of one perf-smoke run.
#[derive(Clone, Copy, Debug)]
pub struct PerfSmokeConfig {
    /// System size `n`.
    pub nodes: usize,
    /// Central-entity rounds to run (`steps = nodes × rounds`).
    pub rounds: usize,
    /// Uniform message-loss rate.
    pub loss: f64,
    /// RNG seed (fixed so the stats fingerprint is comparable across PRs).
    pub seed: u64,
    /// Protocol configuration.
    pub config: SfConfig,
    /// Engine under measurement.
    pub engine: PerfEngine,
    /// Protocol behavior under measurement.
    pub protocol: PerfProtocol,
    /// Worker-thread count for [`PerfEngine::Par`] (ignored by the
    /// single-threaded engines).
    pub threads: usize,
}

impl PerfSmokeConfig {
    /// The standard smoke scale: `s = 16`, `d_L = 6`, 1% loss, seed 42.
    /// CI runs this at `nodes = 100_000`; the committed trajectory point
    /// uses `nodes = 1_000_000`, `rounds = 50`.
    #[must_use]
    pub fn at_scale(nodes: usize, rounds: usize) -> Self {
        Self {
            nodes,
            rounds,
            loss: 0.01,
            seed: 42,
            config: SfConfig::new(16, 6).expect("smoke parameters are legal"),
            engine: PerfEngine::Flat,
            protocol: PerfProtocol::Sf,
            threads: 1,
        }
    }
}

/// The measured outcome of one perf-smoke run.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// The run's parameters.
    pub config: PerfSmokeConfig,
    /// Wall-clock of topology + engine construction, in milliseconds.
    pub build_ms: f64,
    /// Wall-clock of the stepping loop, in milliseconds.
    pub run_ms: f64,
    /// Wall-clock of end-of-run measurement (stats aggregation), in
    /// milliseconds.
    pub measure_ms: f64,
    /// Steps executed (`nodes × rounds`).
    pub steps: u64,
    /// Throughput of the stepping loop.
    pub steps_per_sec: f64,
    /// Peak resident set size, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// The run's system-wide counters — the determinism fingerprint.
    pub stats: SimStats,
}

/// Reads peak RSS (`VmHWM`) from `/proc/self/status`. `None` off Linux or
/// when the field is missing.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Runs one perf smoke at the given scale and returns the report.
///
/// Phase timings are recorded through `sandf-obs` span histograms
/// (`perf.build_ns` / `perf.run_ns` / `perf.measure_ns` in `registry`), so
/// an attached exporter sees the same numbers the JSON reports.
///
/// # Panics
///
/// Panics on `engine: classic, protocol: shuffle` — the classic per-node
/// engine runs only S&F; the zoo rides the arena engines through the
/// [`Engine`]/`ProtocolBehavior` traits.
#[must_use]
pub fn run(config: PerfSmokeConfig, registry: &MetricsRegistry) -> PerfReport {
    let loss = UniformLoss::new(config.loss).expect("loss rate validated by caller");
    let initial = initial_degree(config.config, config.nodes);
    match (config.engine, config.protocol) {
        // The arena engines take the lazy circulant: at n = 10⁷ the boxed
        // node set would transiently dwarf the arena it becomes (~5 GB of
        // `SfNode`s vs. ~1 GB of slots), so the build phase streams.
        (PerfEngine::Flat, PerfProtocol::Sf) => execute(config, registry, || {
            let nodes = topology::circulant_iter(config.nodes, config.config, initial);
            FlatSimulation::new(nodes, loss, config.seed)
        }),
        (PerfEngine::Classic, PerfProtocol::Sf) => execute(config, registry, || {
            let nodes = topology::circulant(config.nodes, config.config, initial);
            Simulation::new(nodes, loss, config.seed)
        }),
        (PerfEngine::Par, PerfProtocol::Sf) => execute(config, registry, || {
            let nodes = topology::circulant_iter(config.nodes, config.config, initial);
            let mut sim = ParSimulation::new(nodes, loss, config.seed, config.threads);
            sim.attach_profiler(registry);
            sim
        }),
        (PerfEngine::Flat, PerfProtocol::Shuffle) => execute(config, registry, || {
            FlatSimulation::from_views(
                ShuffleBehavior::new(3),
                config.config,
                ring_views(config.nodes, initial),
                loss,
                config.seed,
            )
        }),
        (PerfEngine::Par, PerfProtocol::Shuffle) => execute(config, registry, || {
            let mut sim = ParSimulation::from_views(
                ShuffleBehavior::new(3),
                config.config,
                ring_views(config.nodes, initial),
                loss,
                config.seed,
                config.threads,
            );
            sim.attach_profiler(registry);
            sim
        }),
        (PerfEngine::Classic, PerfProtocol::Shuffle) => {
            panic!("the classic engine runs only S&F; use --engine flat or par for shuffle")
        }
    }
}

/// The ring bootstrap the zoo protocols start from (the S&F runs use
/// `topology::circulant`, which is the same shape with S&F slot layout).
fn ring_views(n: usize, k: usize) -> Vec<(NodeId, Vec<NodeId>)> {
    (0..n)
        .map(|i| {
            let view = (1..=k).map(|d| NodeId::new(((i + d) % n) as u64)).collect();
            (NodeId::new(i as u64), view)
        })
        .collect()
}

/// The measurement core, generic over the unified [`Engine`] trait: build
/// (timed), run (timed), aggregate (timed), cross-check the engine ledger
/// against the per-node ledger.
fn execute<E: Engine>(
    config: PerfSmokeConfig,
    registry: &MetricsRegistry,
    build: impl FnOnce() -> E,
) -> PerfReport {
    let build_hist = registry.histogram("perf.build_ns", duration_buckets());
    let run_hist = registry.histogram("perf.run_ns", duration_buckets());
    let measure_hist = registry.histogram("perf.measure_ns", duration_buckets());

    let build_watch = Stopwatch::start();
    let mut sim = {
        let _span = SpanTimer::start(&build_hist);
        build()
    };
    let build_ms = ns_to_ms(build_watch.elapsed_ns());

    let run_watch = Stopwatch::start();
    {
        let _span = SpanTimer::start(&run_hist);
        sim.run_rounds(config.rounds);
    }
    let run_ns = run_watch.elapsed_ns();

    let measure_watch = Stopwatch::start();
    let stats = {
        let _span = SpanTimer::start(&measure_hist);
        let stats = sim.stats();
        // Sanity: no initiations lost between the ledgers (departed nodes
        // aside — this run has no churn).
        assert_eq!(
            stats.actions,
            sim.aggregate_node_stats().initiated,
            "engine and node ledgers disagree"
        );
        stats
    };
    let measure_ms = ns_to_ms(measure_watch.elapsed_ns());

    let steps = (config.nodes * config.rounds) as u64;
    let steps_per_sec =
        if run_ns == 0 { 0.0 } else { steps as f64 / (run_ns as f64 / 1_000_000_000.0) };

    PerfReport {
        config,
        build_ms,
        run_ms: ns_to_ms(run_ns),
        measure_ms,
        steps,
        steps_per_sec,
        peak_rss_bytes: peak_rss_bytes(),
        stats,
    }
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

/// Outcome of the old-harness vs unified-engine shuffle comparison.
///
/// Both sides run the same protocol from the same ring bootstrap at the
/// same loss rate; throughput is steps/sec (one step = one initiated
/// action), measured over independently chosen round counts so the slow
/// side doesn't dictate total wall-clock.
#[derive(Clone, Debug)]
pub struct SpeedupReport {
    /// System size `n`.
    pub nodes: usize,
    /// Uniform message-loss rate.
    pub loss: f64,
    /// Rounds the `BaselineHarness` side ran.
    pub harness_rounds: usize,
    /// Rounds the `FlatSimulation` side ran.
    pub engine_rounds: usize,
    /// Throughput of `BaselineHarness<ShuffleNode>`.
    pub harness_steps_per_sec: f64,
    /// Throughput of `FlatSimulation<_, ShuffleBehavior>`.
    pub engine_steps_per_sec: f64,
    /// `engine_steps_per_sec / harness_steps_per_sec`.
    pub speedup: f64,
    /// Final id population on the harness side (sanity: both sides show
    /// shuffle's drainage dynamics, not a degenerate run).
    pub harness_total_ids: usize,
    /// Final id population on the engine side.
    pub engine_total_ids: usize,
}

/// Measures shuffle (gossip size 3) on the retired-in-favor-of-traits
/// `BaselineHarness` step loop vs [`FlatSimulation`] through the
/// [`Engine`]/`ProtocolBehavior` traits, at the same `n` and loss rate.
///
/// The harness side is `O(n)` per delivery hop (a linear `position` scan
/// per receiver lookup), so its round count is a separate knob — at
/// `n = 10⁵` even a couple of rounds dominate the wall-clock while the
/// arena engine does hundreds in the same time.
#[must_use]
pub fn shuffle_speedup(
    nodes: usize,
    harness_rounds: usize,
    engine_rounds: usize,
    loss: f64,
    seed: u64,
) -> SpeedupReport {
    let k = 8.min(nodes - 1);
    let views = ring_views(nodes, k);
    let config = SfConfig::new(16, 6).expect("legal config");

    let harness_nodes: Vec<ShuffleNode> =
        views.iter().map(|(id, view)| ShuffleNode::new(*id, 16, 3, view)).collect();
    let mut harness = BaselineHarness::new(harness_nodes, loss, seed);
    let watch = Stopwatch::start();
    harness.run_rounds(harness_rounds);
    let harness_ns = watch.elapsed_ns();
    let harness_total_ids = harness.metrics().total_ids;

    let rate = UniformLoss::new(loss).expect("loss rate validated by caller");
    let mut sim = FlatSimulation::from_views(ShuffleBehavior::new(3), config, views, rate, seed);
    let watch = Stopwatch::start();
    sim.run_rounds(engine_rounds);
    let engine_ns = watch.elapsed_ns();
    // Shuffle has no tombstones, so the streaming histogram's edge total
    // equals the graph snapshot's multiset edge count — without the
    // O(n·s) rebuild.
    let engine_total_ids =
        usize::try_from(sim.degree_stats().edges()).expect("edge count fits usize");

    let per_sec = |rounds: usize, ns: u64| {
        if ns == 0 {
            0.0
        } else {
            (nodes * rounds) as f64 / (ns as f64 / 1_000_000_000.0)
        }
    };
    let harness_steps_per_sec = per_sec(harness_rounds, harness_ns);
    let engine_steps_per_sec = per_sec(engine_rounds, engine_ns);
    SpeedupReport {
        nodes,
        loss,
        harness_rounds,
        engine_rounds,
        harness_steps_per_sec,
        engine_steps_per_sec,
        speedup: if harness_steps_per_sec > 0.0 {
            engine_steps_per_sec / harness_steps_per_sec
        } else {
            0.0
        },
        harness_total_ids,
        engine_total_ids,
    }
}

impl SpeedupReport {
    /// Serializes the report as a single JSON object with a stable key
    /// order (hand-rolled; the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"sandf-engine-speedup/v1\",\n",
                "  \"protocol\": \"shuffle\",\n",
                "  \"nodes\": {nodes},\n",
                "  \"loss\": {loss},\n",
                "  \"harness\": {{ \"rounds\": {h_rounds}, \"steps_per_sec\": {h_sps:.1}, ",
                "\"total_ids\": {h_ids} }},\n",
                "  \"flat_engine\": {{ \"rounds\": {e_rounds}, \"steps_per_sec\": {e_sps:.1}, ",
                "\"total_ids\": {e_ids} }},\n",
                "  \"speedup\": {speedup:.1}\n",
                "}}\n",
            ),
            nodes = self.nodes,
            loss = self.loss,
            h_rounds = self.harness_rounds,
            h_sps = self.harness_steps_per_sec,
            h_ids = self.harness_total_ids,
            e_rounds = self.engine_rounds,
            e_sps = self.engine_steps_per_sec,
            e_ids = self.engine_total_ids,
            speedup = self.speedup,
        )
    }
}

impl PerfReport {
    /// Serializes the report as a single JSON object with a stable key
    /// order (hand-rolled; the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let rss = self.peak_rss_bytes.map_or_else(|| "null".to_string(), |bytes| bytes.to_string());
        let s = self.stats;
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"sandf-perf-smoke/v1\",\n",
                "  \"nodes\": {nodes},\n",
                "  \"rounds\": {rounds},\n",
                "  \"config\": {{ \"s\": {s_param}, \"d_l\": {d_l} }},\n",
                "  \"loss\": {loss},\n",
                "  \"seed\": {seed},\n",
                "  \"engine\": \"{engine}\",\n",
                "  \"protocol\": \"{protocol}\",\n",
                "  \"threads\": {threads},\n",
                "  \"phases_ms\": {{ \"build\": {build:.3}, \"run\": {run:.3}, ",
                "\"measure\": {measure:.3} }},\n",
                "  \"steps\": {steps},\n",
                "  \"steps_per_sec\": {sps:.1},\n",
                "  \"peak_rss_bytes\": {rss},\n",
                "  \"stats\": {{ \"actions\": {actions}, \"self_loops\": {self_loops}, ",
                "\"sent\": {sent}, \"lost\": {lost}, \"dead_letters\": {dead_letters}, ",
                "\"stored\": {stored}, \"deleted\": {deleted}, ",
                "\"duplications\": {duplications} }}\n",
                "}}\n",
            ),
            nodes = c.nodes,
            rounds = c.rounds,
            s_param = c.config.view_size(),
            d_l = c.config.lower_threshold(),
            loss = c.loss,
            seed = c.seed,
            engine = c.engine.name(),
            protocol = c.protocol.name(),
            threads = c.threads,
            build = self.build_ms,
            run = self.run_ms,
            measure = self.measure_ms,
            steps = self.steps,
            sps = self.steps_per_sec,
            rss = rss,
            actions = s.actions,
            self_loops = s.self_loops,
            sent = s.sent,
            lost = s.lost,
            dead_letters = s.dead_letters,
            stored = s.stored,
            deleted = s.deleted,
            duplications = s.duplications,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(engine: PerfEngine) -> PerfReport {
        let mut config = PerfSmokeConfig::at_scale(256, 4);
        config.engine = engine;
        run(config, &MetricsRegistry::new())
    }

    #[test]
    fn report_counts_every_step() {
        let report = tiny(PerfEngine::Flat);
        assert_eq!(report.steps, 256 * 4);
        assert_eq!(report.stats.actions, 256 * 4);
        assert!(report.steps_per_sec > 0.0);
    }

    #[test]
    fn flat_and_classic_agree_on_the_fingerprint() {
        assert_eq!(tiny(PerfEngine::Flat).stats, tiny(PerfEngine::Classic).stats);
    }

    #[test]
    fn par_fingerprint_is_thread_count_invariant() {
        let baseline = {
            let mut config = PerfSmokeConfig::at_scale(256, 4);
            config.engine = PerfEngine::Par;
            run(config, &MetricsRegistry::new())
        };
        assert_eq!(baseline.stats.actions, 256 * 4);
        for threads in [2, 8] {
            let mut config = PerfSmokeConfig::at_scale(256, 4);
            config.engine = PerfEngine::Par;
            config.threads = threads;
            let report = run(config, &MetricsRegistry::new());
            assert_eq!(report.stats, baseline.stats, "{threads} threads diverged");
        }
    }

    #[test]
    fn par_run_exports_engine_phase_metrics() {
        let registry = MetricsRegistry::new();
        let mut config = PerfSmokeConfig::at_scale(128, 2);
        config.engine = PerfEngine::Par;
        config.threads = 2;
        let _ = run(config, &registry);
        let names = registry.metric_names();
        for name in [
            "sim.profile.par.action_ns",
            "sim.profile.par.merge_ns",
            "sim.profile.par.deliver_ns",
            "sim.par.shard_imbalance",
        ] {
            assert!(names.contains(&name.to_string()), "metric {name} not registered");
        }
    }

    #[test]
    fn shuffle_protocol_runs_on_both_arena_engines() {
        let mut config = PerfSmokeConfig::at_scale(256, 4);
        config.protocol = PerfProtocol::Shuffle;
        let flat = run(config, &MetricsRegistry::new());
        assert_eq!(flat.stats.actions, 256 * 4);
        assert!(flat.to_json().contains("\"protocol\": \"shuffle\""));
        config.engine = PerfEngine::Par;
        config.threads = 2;
        let par = run(config, &MetricsRegistry::new());
        assert_eq!(par.stats.actions, 256 * 4);
    }

    #[test]
    #[should_panic(expected = "classic engine runs only S&F")]
    fn classic_engine_rejects_the_zoo() {
        let mut config = PerfSmokeConfig::at_scale(64, 1);
        config.engine = PerfEngine::Classic;
        config.protocol = PerfProtocol::Shuffle;
        let _ = run(config, &MetricsRegistry::new());
    }

    #[test]
    fn shuffle_speedup_reports_both_sides() {
        let report = shuffle_speedup(128, 2, 4, 0.05, 7);
        assert!(report.harness_steps_per_sec > 0.0);
        assert!(report.engine_steps_per_sec > 0.0);
        assert!(report.speedup > 0.0);
        assert!(report.harness_total_ids > 0);
        assert!(report.engine_total_ids > 0);
        let json = report.to_json();
        for key in [
            "\"schema\": \"sandf-engine-speedup/v1\"",
            "\"nodes\": 128",
            "\"harness\"",
            "\"flat_engine\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_is_well_formed_enough_to_grep() {
        let json = tiny(PerfEngine::Flat).to_json();
        for key in [
            "\"schema\": \"sandf-perf-smoke/v1\"",
            "\"nodes\": 256",
            "\"rounds\": 4",
            "\"phases_ms\"",
            "\"steps\": 1024",
            "\"steps_per_sec\"",
            "\"peak_rss_bytes\"",
            "\"stats\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn phase_spans_land_in_the_registry() {
        let registry = MetricsRegistry::new();
        let _ = run(PerfSmokeConfig::at_scale(128, 2), &registry);
        for name in ["perf.build_ns", "perf.run_ns", "perf.measure_ns"] {
            assert!(
                registry.metric_names().contains(&name.to_string()),
                "span {name} not registered"
            );
        }
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
