//! # sandf-baselines — the protocols S&F is contrasted with
//!
//! Section 3.1 of the paper taxonomizes gossip membership protocols along
//! two axes: push vs. pull, and whether sent ids are kept or deleted. This
//! crate implements one representative of each corner the paper discusses,
//! behind a shared [`GossipProtocol`] trait, plus a lossy
//! [`BaselineHarness`] so all of them (including S&F via [`SfAdapter`]) run
//! under identical conditions:
//!
//! * [`PushOnlyNode`] — reinforcement-only push that keeps sent ids
//!   (Lpbcast-flavored): loss-immune but spatially dependent;
//! * [`ShuffleNode`] — Cyclon/flipper-style shuffles that delete sent ids:
//!   dependence-free but **drains ids under loss**, the paper's central
//!   criticism;
//! * [`PushPullNode`] — Allavena-style push-pull keeping sent ids:
//!   loss-immune, dependence-heavy.
//!
//! The `baseline_compare` bench binary reproduces the qualitative contrast:
//! under 5–10 % loss the shuffle population collapses while S&F holds its
//! edge count with only `O(ℓ)` extra dependence.
//!
//! Each protocol also ships as a [`sandf_sim::ProtocolBehavior`]
//! ([`PushOnlyBehavior`], [`ShuffleBehavior`], [`PushPullBehavior`] in
//! [`behaviors`]) that runs on the unified `Engine` trait —
//! `FlatSimulation` and `ParSimulation` — at two orders of magnitude
//! beyond what the per-node harness reaches (the committed
//! `BENCH_PR8.json` measures 163× at n = 10⁵). The harness remains the
//! readable per-node reference implementation the behaviors are
//! conformance-tested against (`tests/protocol_conformance.rs`).
//!
//! ## Example
//!
//! ```
//! use sandf_baselines::{BaselineHarness, GossipProtocol, ShuffleNode};
//! use sandf_core::NodeId;
//!
//! let nodes: Vec<ShuffleNode> = (0..16u64)
//!     .map(|i| {
//!         let bootstrap = [NodeId::new((i + 1) % 16), NodeId::new((i + 2) % 16)];
//!         ShuffleNode::new(NodeId::new(i), 8, 2, &bootstrap)
//!     })
//!     .collect();
//! let mut harness = BaselineHarness::new(nodes, 0.05, 42);
//! harness.run_rounds(20);
//! let metrics = harness.metrics();
//! assert!(metrics.total_ids <= 32, "shuffles never create ids");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behaviors;
mod harness;
mod push_only;
mod push_pull;
mod sf_adapter;
mod shuffle;
mod traits;

pub use behaviors::{PushOnlyBehavior, PushPullBehavior, ShuffleBehavior};
pub use harness::{BaselineHarness, HarnessMetrics};
pub use push_only::PushOnlyNode;
pub use push_pull::PushPullNode;
pub use sf_adapter::SfAdapter;
pub use shuffle::ShuffleNode;
pub use traits::{GossipProtocol, Outgoing, ProtocolMessage};
