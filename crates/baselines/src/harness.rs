//! A shared lossy-network harness for comparing protocols.
//!
//! Each step, a random node initiates; every produced message (requests
//! *and* replies) is independently lost with probability `ℓ` — the
//! Section 4.1 model, applied uniformly so comparisons are fair. The
//! drainage metric (`total_ids`) is the one the paper's Section 3.1
//! argument is about: shuffle-style protocols bleed ids under loss, S&F's
//! duplication floor replaces them.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sandf_core::NodeId;

use crate::traits::{GossipProtocol, Outgoing};

/// A comparison harness over any [`GossipProtocol`] implementation.
#[derive(Clone, Debug)]
pub struct BaselineHarness<P> {
    nodes: Vec<P>,
    loss: f64,
    rng: StdRng,
    /// Maximum request→reply chain length per action (guards against
    /// protocols that would ping-pong forever).
    max_chain: usize,
}

/// Aggregate metrics of a harness snapshot.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HarnessMetrics {
    /// Total id instances across all views.
    pub total_ids: usize,
    /// Number of nodes with an empty view (isolated senders).
    pub empty_views: usize,
    /// Mean outdegree.
    pub mean_out_degree: f64,
    /// Population variance of the indegree (Property M2's quantity).
    pub in_degree_variance: f64,
}

impl<P: GossipProtocol> BaselineHarness<P> {
    /// Creates a harness over the given nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or `loss ∉ [0, 1]`.
    #[must_use]
    pub fn new(nodes: Vec<P>, loss: f64, seed: u64) -> Self {
        assert!(!nodes.is_empty(), "harness needs at least one node");
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        Self { nodes, loss, rng: StdRng::seed_from_u64(seed), max_chain: 8 }
    }

    fn position(&self, id: NodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.id() == id)
    }

    /// One step: a random node initiates; the message chain (request,
    /// replies) is delivered subject to independent loss.
    ///
    /// Draw-order contract (pinned, matching the engine contract in
    /// `sandf-sim`'s traits module): loss is drawn at send time, *before*
    /// the receiver's liveness is known — a message to a departed node
    /// consumes a loss draw and only then counts as a dead letter. The
    /// draw is consumed at every loss rate (including 0), so the
    /// downstream draw schedule is identical across rates and
    /// lossless-vs-lossy runs of the same seed stay paired.
    pub fn step(&mut self) {
        let initiator = self.rng.gen_range(0..self.nodes.len());
        let Some(mut outgoing) = self.nodes[initiator].initiate(&mut self.rng) else {
            return;
        };
        let mut from = self.nodes[initiator].id();
        for _ in 0..self.max_chain {
            let lost = self.rng.gen_bool(self.loss);
            if lost {
                return; // message lost; nothing downstream happens
            }
            let Some(receiver) = self.position(outgoing.to) else {
                return; // dead letter
            };
            let Outgoing { to, message } = outgoing;
            match self.nodes[receiver].receive(from, message, &mut self.rng) {
                Some(reply) => {
                    from = to;
                    outgoing = reply;
                }
                None => return,
            }
        }
    }

    /// One round: `n` random steps.
    pub fn round(&mut self) {
        for _ in 0..self.nodes.len() {
            self.step();
        }
    }

    /// Runs `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// The nodes.
    #[must_use]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Removes a node, simulating an unannounced departure: messages
    /// addressed to it become dead letters (which still consume their
    /// loss draw — see [`step`](Self::step)). Returns whether the node
    /// was present.
    pub fn leave(&mut self, id: NodeId) -> bool {
        match self.position(id) {
            Some(k) => {
                self.nodes.remove(k);
                true
            }
            None => false,
        }
    }

    /// Snapshot metrics.
    #[must_use]
    pub fn metrics(&self) -> HarnessMetrics {
        let n = self.nodes.len();
        let out_degrees: Vec<usize> = self.nodes.iter().map(GossipProtocol::out_degree).collect();
        let total_ids: usize = out_degrees.iter().sum();
        let empty_views = out_degrees.iter().filter(|&&d| d == 0).count();
        let mean_out_degree = total_ids as f64 / n as f64;

        // One id → index map per snapshot: the per-entry `position` scan
        // made this O(n²·s), which dominated large-n sweeps.
        let index: HashMap<NodeId, usize> =
            self.nodes.iter().enumerate().map(|(k, node)| (node.id(), k)).collect();
        let mut in_degrees = vec![0usize; n];
        for node in &self.nodes {
            for id in node.view_ids() {
                if let Some(&k) = index.get(&id) {
                    in_degrees[k] += 1;
                }
            }
        }
        let mean_in = in_degrees.iter().sum::<usize>() as f64 / n as f64;
        let in_degree_variance =
            in_degrees.iter().map(|&d| (d as f64 - mean_in).powi(2)).sum::<f64>() / n as f64;

        HarnessMetrics { total_ids, empty_views, mean_out_degree, in_degree_variance }
    }
}

#[cfg(test)]
mod tests {
    use sandf_core::{SfConfig, SfNode};

    use crate::push_pull::PushPullNode;
    use crate::sf_adapter::SfAdapter;
    use crate::shuffle::ShuffleNode;

    use super::*;

    fn ring_bootstrap(n: usize, k: usize) -> Vec<Vec<NodeId>> {
        (0..n).map(|i| (1..=k).map(|d| NodeId::new(((i + d) % n) as u64)).collect()).collect()
    }

    #[test]
    fn shuffle_drains_under_loss_but_not_without() {
        let n = 64;
        let boots = ring_bootstrap(n, 6);
        let make = |seed: u64, loss: f64| {
            let nodes: Vec<ShuffleNode> = boots
                .iter()
                .enumerate()
                .map(|(i, b)| ShuffleNode::new(NodeId::new(i as u64), 12, 3, b))
                .collect();
            let mut h = BaselineHarness::new(nodes, loss, seed);
            h.run_rounds(150);
            h.metrics().total_ids
        };
        let lossless = make(1, 0.0);
        let lossy = make(1, 0.1);
        assert!(lossy * 2 < lossless, "shuffle should drain under loss: {lossless} vs {lossy}");
    }

    #[test]
    fn sf_survives_the_same_loss() {
        let n = 64;
        let config = SfConfig::new(12, 4).unwrap();
        let boots = ring_bootstrap(n, 6);
        let nodes: Vec<SfAdapter> = boots
            .iter()
            .enumerate()
            .map(|(i, b)| {
                SfAdapter::new(SfNode::with_view(NodeId::new(i as u64), config, b).unwrap())
            })
            .collect();
        let mut h = BaselineHarness::new(nodes, 0.1, 1);
        let before = h.metrics().total_ids;
        h.run_rounds(150);
        let after = h.metrics();
        assert!(
            after.total_ids * 2 > before,
            "S&F must not drain: {before} -> {}",
            after.total_ids
        );
        assert_eq!(after.empty_views, 0);
    }

    #[test]
    fn push_pull_is_loss_immune_but_never_shrinks() {
        let n = 32;
        let boots = ring_bootstrap(n, 4);
        let nodes: Vec<PushPullNode> = boots
            .iter()
            .enumerate()
            .map(|(i, b)| PushPullNode::new(NodeId::new(i as u64), 8, 2, b))
            .collect();
        let mut h = BaselineHarness::new(nodes, 0.2, 2);
        h.run_rounds(100);
        let m = h.metrics();
        assert_eq!(m.empty_views, 0);
        assert!(m.mean_out_degree >= 4.0);
    }

    #[test]
    fn metrics_match_the_linear_scan_reference() {
        // Regression for the O(n²·s) indegree pass: the mapped version
        // must produce field-for-field identical `HarnessMetrics` to the
        // original per-entry linear scan.
        let n = 48;
        let boots = ring_bootstrap(n, 5);
        let nodes: Vec<ShuffleNode> = boots
            .iter()
            .enumerate()
            .map(|(i, b)| ShuffleNode::new(NodeId::new(i as u64), 10, 3, b))
            .collect();
        let mut h = BaselineHarness::new(nodes, 0.05, 11);
        h.run_rounds(40);
        let fast = h.metrics();

        let nodes = h.nodes();
        let out_degrees: Vec<usize> = nodes.iter().map(GossipProtocol::out_degree).collect();
        let total_ids: usize = out_degrees.iter().sum();
        let mut in_degrees = vec![0usize; n];
        for node in nodes {
            for id in node.view_ids() {
                if let Some(k) = nodes.iter().position(|m| m.id() == id) {
                    in_degrees[k] += 1;
                }
            }
        }
        let mean_in = in_degrees.iter().sum::<usize>() as f64 / n as f64;
        let reference = HarnessMetrics {
            total_ids,
            empty_views: out_degrees.iter().filter(|&&d| d == 0).count(),
            mean_out_degree: total_ids as f64 / n as f64,
            in_degree_variance: in_degrees
                .iter()
                .map(|&d| (d as f64 - mean_in).powi(2))
                .sum::<f64>()
                / n as f64,
        };
        assert_eq!(fast, reference);
    }

    #[test]
    fn lossless_runs_pair_with_lossy_runs_of_the_same_seed() {
        // Before the draw-order fix, `loss == 0.0` short-circuited past
        // the loss draw, so a lossless run walked a different draw
        // schedule than a same-seeded lossy one — they diverged even
        // when no loss ever fired. The rate below is small enough that
        // no draw fires in this run, so both runs must now be
        // step-for-step identical, including the dead letters produced
        // by the mid-run leave (which consume a loss draw before the
        // liveness check, per the pinned contract).
        let run = |loss: f64| {
            let boots = ring_bootstrap(16, 4);
            let nodes: Vec<ShuffleNode> = boots
                .iter()
                .enumerate()
                .map(|(i, b)| ShuffleNode::new(NodeId::new(i as u64), 10, 3, b))
                .collect();
            let mut h = BaselineHarness::new(nodes, loss, 9);
            h.run_rounds(10);
            assert!(h.leave(NodeId::new(3)), "node 3 is live mid-run");
            assert!(!h.leave(NodeId::new(3)), "double leave is a no-op");
            h.run_rounds(10);
            let views: Vec<(NodeId, Vec<NodeId>)> = h
                .nodes()
                .iter()
                .map(|n| {
                    let mut v = n.view_ids();
                    v.sort_unstable();
                    (n.id(), v)
                })
                .collect();
            (h.metrics(), views)
        };
        assert_eq!(run(0.0), run(1e-9));
    }

    #[test]
    fn metrics_are_consistent() {
        let nodes: Vec<PushPullNode> = (0..4)
            .map(|i| PushPullNode::new(NodeId::new(i), 8, 2, &[NodeId::new((i + 1) % 4)]))
            .collect();
        let h = BaselineHarness::new(nodes, 0.0, 3);
        let m = h.metrics();
        assert_eq!(m.total_ids, 4);
        assert_eq!(m.mean_out_degree, 1.0);
        assert_eq!(m.in_degree_variance, 0.0);
        assert_eq!(m.empty_views, 0);
    }
}
