//! Adapter running an [`sandf_core::SfNode`] under the baseline-comparison
//! harness.

use rand::Rng;
use sandf_core::{InitiateOutcome, Message, NodeId, SfNode};

use crate::traits::{GossipProtocol, Outgoing, ProtocolMessage};

/// S&F behind the [`GossipProtocol`] trait, for apples-to-apples comparison
/// with the baselines under identical loss schedules.
#[derive(Clone, Debug)]
pub struct SfAdapter {
    node: SfNode,
}

impl SfAdapter {
    /// Wraps an S&F node.
    #[must_use]
    pub fn new(node: SfNode) -> Self {
        Self { node }
    }

    /// The wrapped node.
    #[must_use]
    pub fn inner(&self) -> &SfNode {
        &self.node
    }
}

impl GossipProtocol for SfAdapter {
    fn id(&self) -> NodeId {
        self.node.id()
    }

    fn view_ids(&self) -> Vec<NodeId> {
        self.node.view().ids().collect()
    }

    fn out_degree(&self) -> usize {
        self.node.out_degree()
    }

    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Outgoing> {
        match self.node.initiate(rng) {
            InitiateOutcome::SelfLoop => None,
            InitiateOutcome::Sent { to, message, .. } => Some(Outgoing {
                to,
                message: ProtocolMessage::Push { ids: vec![message.sender, message.payload] },
            }),
        }
    }

    fn receive<R: Rng + ?Sized>(
        &mut self,
        _from: NodeId,
        message: ProtocolMessage,
        rng: &mut R,
    ) -> Option<Outgoing> {
        if let ProtocolMessage::Push { ids } = message {
            if let [sender, payload] = ids[..] {
                self.node.receive(Message::new(sender, payload, false), rng);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sandf_core::SfConfig;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn adapter_round_trips_a_message() {
        let config = SfConfig::new(8, 2).unwrap();
        let mut a = SfAdapter::new(
            SfNode::with_view(id(0), config, &[id(1), id(2), id(3), id(4)]).unwrap(),
        );
        let mut b = SfAdapter::new(SfNode::with_view(id(1), config, &[id(0), id(2)]).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let out = loop {
            if let Some(out) = a.initiate(&mut rng) {
                break out;
            }
        };
        let before = b.out_degree();
        if out.to == id(1) {
            assert!(b.receive(id(0), out.message, &mut rng).is_none());
            assert_eq!(b.out_degree(), before + 2);
        }
    }

    #[test]
    fn adapter_exposes_view() {
        let config = SfConfig::new(8, 2).unwrap();
        let a = SfAdapter::new(SfNode::with_view(id(0), config, &[id(1), id(2)]).unwrap());
        assert_eq!(a.out_degree(), 2);
        assert_eq!(a.view_ids().len(), 2);
        assert_eq!(a.id(), id(0));
    }
}
