//! A push-pull protocol in the style of Allavena–Demers–Hopcroft
//! (Section 3.1): reinforcement by push, mixing by pull, with sent ids kept.
//!
//! Keeping sent ids makes the protocol immune to loss (nothing is destroyed
//! when a message vanishes) at the cost of systematic spatial dependencies
//! between neighboring views — the trade-off S&F's duplication threshold is
//! designed to navigate.

use rand::seq::SliceRandom;
use rand::Rng;
use sandf_core::NodeId;

use crate::traits::{GossipProtocol, Outgoing, ProtocolMessage};

/// A push-pull gossip node with a bounded view.
#[derive(Clone, Debug)]
pub struct PushPullNode {
    id: NodeId,
    view: Vec<NodeId>,
    capacity: usize,
    /// Number of ids returned per pull reply.
    reply_size: usize,
}

impl PushPullNode {
    /// Creates a node with the given bootstrap view and capacity.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap exceeds `capacity` or a parameter is 0.
    #[must_use]
    pub fn new(id: NodeId, capacity: usize, reply_size: usize, bootstrap: &[NodeId]) -> Self {
        assert!(capacity > 0 && reply_size > 0, "parameters must be positive");
        assert!(bootstrap.len() <= capacity, "bootstrap exceeds capacity");
        Self { id, view: bootstrap.to_vec(), capacity, reply_size }
    }

    fn store<R: Rng + ?Sized>(&mut self, id: NodeId, rng: &mut R) {
        if id == self.id {
            return;
        }
        if self.view.len() < self.capacity {
            self.view.push(id);
        } else {
            let victim = rng.gen_range(0..self.view.len());
            self.view[victim] = id;
        }
    }
}

impl GossipProtocol for PushPullNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view_ids(&self) -> Vec<NodeId> {
        self.view.clone()
    }

    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Outgoing> {
        let &target = self.view.choose(rng)?;
        // Push our own id (reinforcement) and request a pull (mixing); the
        // harness delivers the reply separately, subject to loss.
        Some(Outgoing { to: target, message: ProtocolMessage::Push { ids: vec![self.id] } })
    }

    fn receive<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        message: ProtocolMessage,
        rng: &mut R,
    ) -> Option<Outgoing> {
        match message {
            ProtocolMessage::Push { ids } => {
                for id in ids {
                    self.store(id, rng);
                }
                // Respond with a pull reply: ids are *copied*, never removed.
                let mut pool = self.view.clone();
                pool.shuffle(rng);
                pool.truncate(self.reply_size);
                Some(Outgoing { to: from, message: ProtocolMessage::PullReply { ids: pool } })
            }
            ProtocolMessage::PullReply { ids } => {
                for id in ids {
                    self.store(id, rng);
                }
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn push_keeps_local_view() {
        let mut node = PushPullNode::new(id(0), 8, 2, &[id(1), id(2)]);
        let mut rng = StdRng::seed_from_u64(1);
        node.initiate(&mut rng).unwrap();
        assert_eq!(node.out_degree(), 2);
    }

    #[test]
    fn push_triggers_pull_reply_with_copies() {
        let mut b = PushPullNode::new(id(1), 8, 2, &[id(3), id(4), id(5)]);
        let mut rng = StdRng::seed_from_u64(2);
        let before = b.out_degree();
        let reply = b.receive(id(0), ProtocolMessage::Push { ids: vec![id(0)] }, &mut rng).unwrap();
        // Reinforcement stored; reply ids are copies, view may only grow.
        assert!(b.out_degree() >= before);
        let ProtocolMessage::PullReply { ids } = reply.message else { panic!("wrong variant") };
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn lost_messages_destroy_nothing() {
        let mut a = PushPullNode::new(id(0), 8, 2, &[id(1), id(2)]);
        let b = PushPullNode::new(id(1), 8, 2, &[id(0), id(3)]);
        let mut rng = StdRng::seed_from_u64(3);
        let before = a.out_degree() + b.out_degree();
        let _lost = a.initiate(&mut rng).unwrap();
        // Neither the push nor any reply arrives; views are untouched.
        assert_eq!(a.out_degree() + b.out_degree(), before);
    }

    #[test]
    fn pull_reply_is_absorbed() {
        let mut a = PushPullNode::new(id(0), 8, 2, &[id(1)]);
        let mut rng = StdRng::seed_from_u64(4);
        let none =
            a.receive(id(1), ProtocolMessage::PullReply { ids: vec![id(7), id(8)] }, &mut rng);
        assert!(none.is_none());
        assert_eq!(a.out_degree(), 3);
    }
}
