//! A reinforcement-only push protocol (a simplification of Lpbcast-style
//! push gossip, Section 3.1).
//!
//! Each action, the node sends its own id plus one id copied from its view
//! to a random out-neighbor. Sent ids are *kept* (inducing the spatial
//! dependencies the paper sets out to avoid); a full receiver evicts a
//! uniformly random entry. Robust to loss (nothing is removed on send) but
//! heavily correlated.

use rand::seq::SliceRandom;
use rand::Rng;
use sandf_core::NodeId;

use crate::traits::{GossipProtocol, Outgoing, ProtocolMessage};

/// A push-only gossip node with a bounded view.
#[derive(Clone, Debug)]
pub struct PushOnlyNode {
    id: NodeId,
    view: Vec<NodeId>,
    capacity: usize,
}

impl PushOnlyNode {
    /// Creates a node with the given bootstrap view and view capacity.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap exceeds `capacity` or `capacity == 0`.
    #[must_use]
    pub fn new(id: NodeId, capacity: usize, bootstrap: &[NodeId]) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(bootstrap.len() <= capacity, "bootstrap exceeds capacity");
        Self { id, view: bootstrap.to_vec(), capacity }
    }

    fn store<R: Rng + ?Sized>(&mut self, id: NodeId, rng: &mut R) {
        if self.view.len() < self.capacity {
            self.view.push(id);
        } else {
            let victim = rng.gen_range(0..self.view.len());
            self.view[victim] = id;
        }
    }
}

impl GossipProtocol for PushOnlyNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view_ids(&self) -> Vec<NodeId> {
        self.view.clone()
    }

    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Outgoing> {
        let &target = self.view.choose(rng)?;
        let &extra = self.view.choose(rng)?;
        Some(Outgoing { to: target, message: ProtocolMessage::Push { ids: vec![self.id, extra] } })
    }

    fn receive<R: Rng + ?Sized>(
        &mut self,
        _from: NodeId,
        message: ProtocolMessage,
        rng: &mut R,
    ) -> Option<Outgoing> {
        if let ProtocolMessage::Push { ids } = message {
            for id in ids {
                if id != self.id {
                    self.store(id, rng);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn initiate_keeps_the_view_intact() {
        let mut node = PushOnlyNode::new(id(0), 8, &[id(1), id(2)]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = node.initiate(&mut rng).unwrap();
        assert_eq!(node.out_degree(), 2, "push-only never removes ids");
        let ProtocolMessage::Push { ids } = out.message else { panic!("wrong variant") };
        assert_eq!(ids[0], id(0), "reinforcement: own id first");
    }

    #[test]
    fn empty_view_stays_silent() {
        let mut node = PushOnlyNode::new(id(0), 4, &[]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(node.initiate(&mut rng).is_none());
    }

    #[test]
    fn receive_fills_then_evicts() {
        let mut node = PushOnlyNode::new(id(9), 2, &[]);
        let mut rng = StdRng::seed_from_u64(2);
        node.receive(id(1), ProtocolMessage::Push { ids: vec![id(1), id(2)] }, &mut rng);
        assert_eq!(node.out_degree(), 2);
        node.receive(id(3), ProtocolMessage::Push { ids: vec![id(3)] }, &mut rng);
        assert_eq!(node.out_degree(), 2, "eviction keeps the view bounded");
        assert!(node.view_ids().contains(&id(3)));
    }

    #[test]
    fn own_id_is_never_stored() {
        let mut node = PushOnlyNode::new(id(9), 4, &[]);
        let mut rng = StdRng::seed_from_u64(3);
        node.receive(id(1), ProtocolMessage::Push { ids: vec![id(9), id(1)] }, &mut rng);
        assert!(!node.view_ids().contains(&id(9)));
    }
}
