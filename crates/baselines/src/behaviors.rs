//! The baseline protocols as [`ProtocolBehavior`]s, executable on the
//! fast arena engines ([`FlatSimulation`](sandf_sim::FlatSimulation),
//! [`ParSimulation`](sandf_sim::ParSimulation)).
//!
//! These are re-expressions of [`PushOnlyNode`](crate::PushOnlyNode),
//! [`PushPullNode`](crate::PushPullNode), and
//! [`ShuffleNode`](crate::ShuffleNode) over a fixed-slot arena window
//! ([`SlotView`]): the same multiset dynamics (what enters and leaves a
//! view, and with what probability), not the same RNG draw sequence — the
//! original `Vec`-backed nodes append below capacity where the arena picks
//! a uniformly random empty slot, which changes slot positions but not the
//! view contents. `tests/protocol_conformance.rs` checks the retained
//! [`BaselineHarness`](crate::BaselineHarness) against these behaviors
//! statistically (ci95 bands at matched parameters).
//!
//! Wire format: every message is a [`IdBatch`] — `sender` is always the
//! emitting node, `kind` selects the protocol phase, and the payload ids
//! ride in the fixed-capacity array (which bounds `reply_size` /
//! `gossip_size` at [`IdBatch::CAPACITY`]).

use rand::rngs::StdRng;
use rand::Rng;
use sandf_core::{NodeId, SfConfig};
use sandf_sim::{IdBatch, ProtocolBehavior, Receipt, SlotView};

/// [`IdBatch::kind`]: a one-way push (push-only, and push-pull's request
/// half).
pub const KIND_PUSH: u8 = 0;
/// [`IdBatch::kind`]: a pull reply carrying ids *copied* from the
/// responder.
pub const KIND_PULL_REPLY: u8 = 1;
/// [`IdBatch::kind`]: a shuffle request carrying ids *removed* from the
/// initiator.
pub const KIND_SHUFFLE_REQUEST: u8 = 2;
/// [`IdBatch::kind`]: a shuffle reply carrying ids removed from the
/// responder.
pub const KIND_SHUFFLE_REPLY: u8 = 3;

/// Picks a uniformly random occupied slot offset, or `None` when the view
/// is empty — the arena equivalent of `view.choose(rng)` on the
/// `Vec`-backed nodes.
fn random_occupied(view: &SlotView<'_>, rng: &mut StdRng) -> Option<usize> {
    let occupied = view.occupied_offsets();
    if occupied.is_empty() {
        return None;
    }
    Some(occupied[rng.gen_range(0..occupied.len())])
}

/// Stores `id` with bounded-view semantics shared by the keep-sent-ids
/// baselines: below capacity the id lands in a random empty slot; at
/// capacity it overwrites a uniformly random victim (degree unchanged).
/// The node's own id is never stored.
fn store_bounded(view: &mut SlotView<'_>, id: NodeId, rng: &mut StdRng) {
    if id == view.id {
        return;
    }
    if (*view.degree as usize) < view.len() {
        view.insert_into_random_empty(id, 0, rng);
    } else {
        let victim = rng.gen_range(0..view.len());
        view.set(victim, id, 0);
    }
}

/// Removes up to `count` uniformly random occupied entries, returning the
/// removed ids — the arena equivalent of `ShuffleNode::take_random`.
fn take_random(view: &mut SlotView<'_>, count: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut taken = Vec::with_capacity(count);
    for _ in 0..count {
        let Some(off) = random_occupied(view, rng) else { break };
        taken.push(view.id_at(off).expect("occupied slot has an id"));
        view.clear(off);
        *view.degree -= 1;
    }
    taken
}

/// Absorbs shuffle ids: stored into random empty slots while capacity
/// lasts, silently dropped afterwards (the multigraph semantics of
/// `ShuffleNode::absorb`). Returns how many ids were stored.
fn absorb(view: &mut SlotView<'_>, ids: impl Iterator<Item = NodeId>, rng: &mut StdRng) -> usize {
    let mut stored = 0;
    for id in ids {
        if (*view.degree as usize) < view.len() {
            view.insert_into_random_empty(id, 0, rng);
            stored += 1;
        }
    }
    stored
}

/// Reinforcement-only push ([`PushOnlyNode`](crate::PushOnlyNode) over the
/// arena): each action pushes the node's own id plus one copied view id to
/// a random neighbor; sent ids are kept; a full receiver evicts uniformly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PushOnlyBehavior;

impl ProtocolBehavior for PushOnlyBehavior {
    type Msg = IdBatch;

    fn sender(msg: &IdBatch) -> NodeId {
        msg.sender
    }

    fn initiate(
        &self,
        _config: SfConfig,
        view: SlotView<'_>,
        rng: &mut StdRng,
    ) -> Option<(NodeId, IdBatch)> {
        view.stats.initiated += 1;
        let Some(target_off) = random_occupied(&view, rng) else {
            view.stats.self_loops += 1;
            return None;
        };
        let extra_off = random_occupied(&view, rng).expect("view is non-empty");
        let target = view.id_at(target_off).expect("occupied slot has an id");
        let extra = view.id_at(extra_off).expect("occupied slot has an id");
        let mut msg = IdBatch::new(view.id, KIND_PUSH);
        msg.push(extra, false);
        view.stats.sent += 1;
        Some((target, msg))
    }

    fn receive(
        &self,
        _config: SfConfig,
        mut view: SlotView<'_>,
        msg: IdBatch,
        rng: &mut StdRng,
    ) -> Receipt<IdBatch> {
        store_bounded(&mut view, msg.sender, rng);
        for (id, _) in msg.entries() {
            store_bounded(&mut view, id, rng);
        }
        view.stats.stored += 1;
        Receipt::stored()
    }
}

/// Allavena-style push-pull ([`PushPullNode`](crate::PushPullNode) over
/// the arena): reinforcement by push, mixing by a pull reply whose ids are
/// copied, never removed — loss-immune, dependence-heavy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushPullBehavior {
    /// Ids returned per pull reply (≤ [`IdBatch::CAPACITY`]).
    pub reply_size: usize,
}

impl PushPullBehavior {
    /// Creates the behavior with the given pull-reply size.
    ///
    /// # Panics
    ///
    /// Panics if `reply_size` is zero or exceeds [`IdBatch::CAPACITY`].
    #[must_use]
    pub fn new(reply_size: usize) -> Self {
        assert!(
            reply_size > 0 && reply_size <= IdBatch::CAPACITY,
            "reply size must be in 1..={}",
            IdBatch::CAPACITY
        );
        Self { reply_size }
    }
}

impl ProtocolBehavior for PushPullBehavior {
    type Msg = IdBatch;

    fn sender(msg: &IdBatch) -> NodeId {
        msg.sender
    }

    fn initiate(
        &self,
        _config: SfConfig,
        view: SlotView<'_>,
        rng: &mut StdRng,
    ) -> Option<(NodeId, IdBatch)> {
        view.stats.initiated += 1;
        let Some(target_off) = random_occupied(&view, rng) else {
            view.stats.self_loops += 1;
            return None;
        };
        let target = view.id_at(target_off).expect("occupied slot has an id");
        view.stats.sent += 1;
        // The push carries only the sender id (reinforcement) and doubles
        // as the pull request (mixing); the reply travels separately,
        // subject to its own loss draw.
        Some((target, IdBatch::new(view.id, KIND_PUSH)))
    }

    fn receive(
        &self,
        _config: SfConfig,
        mut view: SlotView<'_>,
        msg: IdBatch,
        rng: &mut StdRng,
    ) -> Receipt<IdBatch> {
        match msg.kind {
            KIND_PUSH => {
                store_bounded(&mut view, msg.sender, rng);
                // Copy (never remove) up to reply_size distinct view
                // entries into the pull reply.
                let occupied = view.occupied_offsets();
                let take = self.reply_size.min(occupied.len());
                let picks = rand::seq::index::sample(rng, occupied.len(), take);
                let mut reply = IdBatch::new(view.id, KIND_PULL_REPLY);
                for pick in picks.into_vec() {
                    reply.push(view.id_at(occupied[pick]).expect("occupied slot has an id"), false);
                }
                view.stats.stored += 1;
                view.stats.sent += 1;
                Receipt::stored_with_reply(msg.sender, reply)
            }
            _ => {
                for (id, _) in msg.entries() {
                    store_bounded(&mut view, id, rng);
                }
                view.stats.stored += 1;
                Receipt::stored()
            }
        }
    }
}

/// Cyclon/flipper-style shuffle ([`ShuffleNode`](crate::ShuffleNode) over
/// the arena): bidirectional exchanges that *delete* sent ids — the
/// Section 3.1 baseline that drains under loss, because a lost request or
/// reply permanently destroys the ids in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShuffleBehavior {
    /// Ids exchanged per shuffle (≤ [`IdBatch::CAPACITY`]).
    pub gossip_size: usize,
}

impl ShuffleBehavior {
    /// Creates the behavior with the given shuffle length.
    ///
    /// # Panics
    ///
    /// Panics if `gossip_size` is zero or exceeds [`IdBatch::CAPACITY`].
    #[must_use]
    pub fn new(gossip_size: usize) -> Self {
        assert!(
            gossip_size > 0 && gossip_size <= IdBatch::CAPACITY,
            "gossip size must be in 1..={}",
            IdBatch::CAPACITY
        );
        Self { gossip_size }
    }
}

impl ProtocolBehavior for ShuffleBehavior {
    type Msg = IdBatch;

    fn sender(msg: &IdBatch) -> NodeId {
        msg.sender
    }

    fn initiate(
        &self,
        _config: SfConfig,
        mut view: SlotView<'_>,
        rng: &mut StdRng,
    ) -> Option<(NodeId, IdBatch)> {
        view.stats.initiated += 1;
        let Some(target_off) = random_occupied(&view, rng) else {
            view.stats.self_loops += 1;
            return None;
        };
        // The target instance and up to gossip_size − 1 more ids leave
        // the view inside the request; the sender id rides along
        // Cyclon-style (in the `sender` field).
        let target = view.id_at(target_off).expect("occupied slot has an id");
        view.clear(target_off);
        *view.degree -= 1;
        let removed = take_random(&mut view, self.gossip_size.saturating_sub(1), rng);
        let mut msg = IdBatch::new(view.id, KIND_SHUFFLE_REQUEST);
        for id in removed {
            msg.push(id, false);
        }
        view.stats.sent += 1;
        Some((target, msg))
    }

    fn receive(
        &self,
        _config: SfConfig,
        mut view: SlotView<'_>,
        msg: IdBatch,
        rng: &mut StdRng,
    ) -> Receipt<IdBatch> {
        match msg.kind {
            KIND_SHUFFLE_REQUEST => {
                let removed = take_random(&mut view, self.gossip_size, rng);
                let stored = absorb(
                    &mut view,
                    std::iter::once(msg.sender).chain(msg.entries().map(|(id, _)| id)),
                    rng,
                );
                let mut reply = IdBatch::new(view.id, KIND_SHUFFLE_REPLY);
                for id in removed {
                    reply.push(id, false);
                }
                if stored > 0 {
                    view.stats.stored += 1;
                } else {
                    view.stats.deletions += 1;
                }
                view.stats.sent += 1;
                let deleted = stored == 0;
                Receipt { deleted, reply: Some((msg.sender, reply)) }
            }
            _ => {
                let stored = absorb(&mut view, msg.entries().map(|(id, _)| id), rng);
                if stored > 0 {
                    view.stats.stored += 1;
                    Receipt::stored()
                } else {
                    view.stats.deletions += 1;
                    Receipt::deleted()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use sandf_core::NodeStats;
    use sandf_sim::EMPTY_SLOT;

    use super::*;

    fn window<'a>(
        ids: &'a mut [u32],
        flags: &'a mut [u8],
        degree: &'a mut u32,
        stats: &'a mut NodeStats,
    ) -> SlotView<'a> {
        SlotView { id: NodeId::new(99), ids, flags, degree, stats }
    }

    fn config() -> SfConfig {
        SfConfig::new(8, 2).unwrap()
    }

    #[test]
    fn push_only_keeps_the_view_intact() {
        let mut ids = [1, 2, EMPTY_SLOT, EMPTY_SLOT];
        let mut flags = [0u8; 4];
        let mut degree = 2u32;
        let mut stats = NodeStats::new();
        let mut rng = StdRng::seed_from_u64(1);
        let view = window(&mut ids, &mut flags, &mut degree, &mut stats);
        let (_, msg) = PushOnlyBehavior.initiate(config(), view, &mut rng).unwrap();
        assert_eq!(degree, 2, "push-only never removes ids");
        assert_eq!(msg.sender, NodeId::new(99), "reinforcement: own id rides as sender");
        assert_eq!(msg.len, 1, "one copied view id");
    }

    #[test]
    fn push_pull_replies_with_copies() {
        let mut ids = [3, 4, 5, EMPTY_SLOT];
        let mut flags = [0u8; 4];
        let mut degree = 3u32;
        let mut stats = NodeStats::new();
        let mut rng = StdRng::seed_from_u64(2);
        let view = window(&mut ids, &mut flags, &mut degree, &mut stats);
        let push = IdBatch::new(NodeId::new(7), KIND_PUSH);
        let receipt = PushPullBehavior::new(2).receive(config(), view, push, &mut rng);
        let (to, reply) = receipt.reply.expect("a push triggers a pull reply");
        assert_eq!(to, NodeId::new(7));
        assert_eq!(reply.kind, KIND_PULL_REPLY);
        assert_eq!(reply.len, 2);
        assert_eq!(degree, 4, "the pushed sender id was stored; copies removed nothing");
    }

    #[test]
    fn shuffle_removes_sent_ids_and_replies() {
        let mut ids = [1, 2, 3, EMPTY_SLOT];
        let mut flags = [0u8; 4];
        let mut degree = 3u32;
        let mut stats = NodeStats::new();
        let mut rng = StdRng::seed_from_u64(3);
        let behavior = ShuffleBehavior::new(2);
        let view = window(&mut ids, &mut flags, &mut degree, &mut stats);
        let (_, msg) = behavior.initiate(config(), view, &mut rng).unwrap();
        assert_eq!(degree, 1, "target + one more id left the view");
        assert_eq!(msg.len, 1, "one extra id in the request (sender rides separately)");

        // Deliver the request to a second window; its reply must carry
        // removed (not copied) ids.
        let mut ids_b = [10, 11, 12, 13];
        let mut flags_b = [0u8; 4];
        let mut degree_b = 4u32;
        let mut stats_b = NodeStats::new();
        let view_b = SlotView {
            id: NodeId::new(50),
            ids: &mut ids_b,
            flags: &mut flags_b,
            degree: &mut degree_b,
            stats: &mut stats_b,
        };
        let receipt = behavior.receive(config(), view_b, msg, &mut rng);
        let (_, reply) = receipt.reply.expect("a request triggers a reply");
        assert_eq!(reply.kind, KIND_SHUFFLE_REPLY);
        assert_eq!(reply.len, 2, "gossip_size ids removed into the reply");
        // 4 − 2 removed + 2 absorbed (sender + payload) = 4.
        assert_eq!(degree_b, 4);
    }

    #[test]
    fn empty_views_self_loop() {
        let mut ids = [EMPTY_SLOT; 4];
        let mut flags = [0u8; 4];
        let mut degree = 0u32;
        let mut stats = NodeStats::new();
        let mut rng = StdRng::seed_from_u64(4);
        let view = window(&mut ids, &mut flags, &mut degree, &mut stats);
        assert!(ShuffleBehavior::new(2).initiate(config(), view, &mut rng).is_none());
        assert_eq!(stats.self_loops, 1);
    }
}
