//! The common interface all baseline protocols (and S&F) implement, so one
//! harness can compare them under identical loss.

use rand::Rng;
use sandf_core::NodeId;

/// A message of one of the baseline protocols.
///
/// S&F needs only a single one-way message type; the baselines from the
/// paper's Section 3.1 taxonomy need request/reply pairs (pull-based mixing
/// and shuffles), which is exactly what makes them fragile under loss: a
/// lost reply strands ids that were already removed from the requester's
/// view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolMessage {
    /// One-way push of ids (reinforcement and/or mixing by push).
    Push {
        /// The pushed ids.
        ids: Vec<NodeId>,
    },
    /// A shuffle request carrying ids the initiator *removed* from its view.
    ShuffleRequest {
        /// The offered ids.
        ids: Vec<NodeId>,
    },
    /// The shuffle reply carrying ids the responder removed from its view.
    ShuffleReply {
        /// The returned ids.
        ids: Vec<NodeId>,
    },
    /// A pull request (mixing by pull).
    PullRequest,
    /// The pull reply with ids copied (not removed) from the responder.
    PullReply {
        /// The copied ids.
        ids: Vec<NodeId>,
    },
}

/// An addressed outgoing message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outgoing {
    /// The destination node.
    pub to: NodeId,
    /// The message body.
    pub message: ProtocolMessage,
}

/// A gossip membership protocol participant, driven by a shared harness.
pub trait GossipProtocol {
    /// This node's id.
    fn id(&self) -> NodeId;

    /// The ids currently in the local view (with multiplicity).
    fn view_ids(&self) -> Vec<NodeId>;

    /// The current outdegree.
    fn out_degree(&self) -> usize {
        self.view_ids().len()
    }

    /// Initiates one protocol action, possibly producing a message.
    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Outgoing>;

    /// Handles a delivered message, possibly producing a reply.
    fn receive<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        message: ProtocolMessage,
        rng: &mut R,
    ) -> Option<Outgoing>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outgoing_is_comparable() {
        let a = Outgoing { to: NodeId::new(1), message: ProtocolMessage::PullRequest };
        assert_eq!(a, a.clone());
    }

    #[test]
    fn message_variants_are_distinct() {
        let push = ProtocolMessage::Push { ids: vec![NodeId::new(1)] };
        let pull = ProtocolMessage::PullRequest;
        assert_ne!(push, pull);
    }
}
