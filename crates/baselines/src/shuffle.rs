//! A shuffle protocol in the style of Cyclon / flipper (Section 3.1):
//! bidirectional exchanges that *delete* sent ids.
//!
//! Shuffles avoid spatial dependencies — ids move, they are never copied —
//! but the paper's central criticism applies: the exchange is not atomic in
//! a real network, so a lost request or reply permanently destroys the ids
//! that were in flight. "Those that delete the sent ids … are unable to
//! withstand message loss or node failures since the system gradually loses
//! more and more ids." The baseline-comparison bench demonstrates exactly
//! this drainage.

use rand::seq::SliceRandom;
use rand::Rng;
use sandf_core::NodeId;

use crate::traits::{GossipProtocol, Outgoing, ProtocolMessage};

/// A shuffle (Cyclon-style) gossip node.
#[derive(Clone, Debug)]
pub struct ShuffleNode {
    id: NodeId,
    view: Vec<NodeId>,
    capacity: usize,
    /// Number of ids exchanged per shuffle.
    gossip_size: usize,
}

impl ShuffleNode {
    /// Creates a node with the given bootstrap view, view capacity, and
    /// shuffle length.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap exceeds `capacity`, or either parameter is 0.
    #[must_use]
    pub fn new(id: NodeId, capacity: usize, gossip_size: usize, bootstrap: &[NodeId]) -> Self {
        assert!(capacity > 0 && gossip_size > 0, "parameters must be positive");
        assert!(bootstrap.len() <= capacity, "bootstrap exceeds capacity");
        Self { id, view: bootstrap.to_vec(), capacity, gossip_size }
    }

    /// Removes up to `count` randomly chosen ids from the view.
    fn take_random<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) -> Vec<NodeId> {
        let mut taken = Vec::with_capacity(count);
        for _ in 0..count {
            if self.view.is_empty() {
                break;
            }
            let k = rng.gen_range(0..self.view.len());
            taken.push(self.view.swap_remove(k));
        }
        taken
    }

    fn absorb(&mut self, ids: Vec<NodeId>) {
        // The shuffle/flipper protocols of Mahlmann–Schindelhauer operate on
        // multigraphs where self-loops and parallel edges are legal, which
        // is what makes the exchange conserve ids exactly when no message
        // is lost. Only capacity can drop an id.
        for id in ids {
            if self.view.len() < self.capacity {
                self.view.push(id);
            }
        }
    }
}

impl GossipProtocol for ShuffleNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view_ids(&self) -> Vec<NodeId> {
        self.view.clone()
    }

    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Outgoing> {
        let &target = self.view.choose(rng)?;
        // Remove the target and up to gossip_size − 1 more ids; they travel
        // in the request and are *gone* from this view.
        let pos = self.view.iter().position(|&x| x == target).expect("chosen from view");
        self.view.swap_remove(pos);
        let mut ids = self.take_random(self.gossip_size.saturating_sub(1), rng);
        ids.push(self.id); // tell the peer who we are, Cyclon-style
        Some(Outgoing { to: target, message: ProtocolMessage::ShuffleRequest { ids } })
    }

    fn receive<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        message: ProtocolMessage,
        rng: &mut R,
    ) -> Option<Outgoing> {
        match message {
            ProtocolMessage::ShuffleRequest { ids } => {
                let reply_ids = self.take_random(self.gossip_size, rng);
                self.absorb(ids);
                Some(Outgoing {
                    to: from,
                    message: ProtocolMessage::ShuffleReply { ids: reply_ids },
                })
            }
            ProtocolMessage::ShuffleReply { ids } => {
                self.absorb(ids);
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn initiate_removes_sent_ids() {
        let mut node = ShuffleNode::new(id(0), 8, 2, &[id(1), id(2), id(3)]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = node.initiate(&mut rng).unwrap();
        // Target + one more id left the view; own id joined the request.
        assert_eq!(node.out_degree(), 1);
        let ProtocolMessage::ShuffleRequest { ids } = out.message else { panic!("wrong variant") };
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&id(0)));
    }

    #[test]
    fn request_reply_conserves_ids_without_loss() {
        let mut a = ShuffleNode::new(id(0), 8, 2, &[id(1), id(5)]);
        let mut rng = StdRng::seed_from_u64(2);
        let a_before = a.out_degree();
        // The target is whichever view entry the RNG picked; build the peer
        // under that id so the request reaches its actual addressee.
        let req = a.initiate(&mut rng).unwrap();
        assert!(req.to == id(1) || req.to == id(5), "target from outside the view");
        let mut b = ShuffleNode::new(req.to, 8, 2, &[id(0), id(6)]);
        let total_before = a_before + b.out_degree();
        let reply = b.receive(id(0), req.message, &mut rng).unwrap();
        assert_eq!(reply.to, id(0));
        a.receive(id(1), reply.message, &mut rng);
        let total_after = a.out_degree() + b.out_degree();
        // The exchange moves ids around; without loss the population stays
        // within one of the original (the initiator's id entered, the
        // request's target-id copy left).
        assert!((total_after as i64 - total_before as i64).abs() <= 1);
    }

    #[test]
    fn lost_reply_destroys_ids() {
        let mut a = ShuffleNode::new(id(0), 8, 2, &[id(1), id(5)]);
        let mut b = ShuffleNode::new(id(1), 8, 2, &[id(0), id(6)]);
        let mut rng = StdRng::seed_from_u64(3);
        let before = a.out_degree() + b.out_degree();
        let req = a.initiate(&mut rng).unwrap();
        let _reply_lost = b.receive(id(0), req.message, &mut rng).unwrap();
        // Drop the reply on the floor: the ids b removed are gone.
        let after = a.out_degree() + b.out_degree();
        assert!(after < before, "loss must drain ids: {before} -> {after}");
    }

    #[test]
    fn empty_view_cannot_initiate() {
        let mut node = ShuffleNode::new(id(0), 4, 2, &[]);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(node.initiate(&mut rng).is_none());
    }
}
