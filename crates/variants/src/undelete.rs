//! Variant 1 (Section 5, optimization 1): "instead of removing sent ids
//! from the view, the protocol could only mark them for deletion and could
//! then use undeletion instead of duplication."
//!
//! Sent entries become *tombstones*: invisible to the protocol, but kept as
//! a reservoir. When the live outdegree is at `d_L` and the vanilla
//! protocol would duplicate live entries (creating fresh dependence with an
//! immediate neighbor), this variant *undeletes* two tombstoned entries
//! instead — recycling stale ids rather than copying live ones. Tombstones
//! are also reclaimed as storage when a message arrives and no empty slot
//! is left.

use rand::Rng;
use sandf_core::{Entry, NodeId, SfConfig};

use crate::traits::{SfVariant, VariantMessage, VariantOutgoing, VariantStats};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Slot {
    Empty,
    Live(Entry),
    Tombstone(Entry),
}

/// An S&F node with tombstoned sends and undeletion-based compensation.
#[derive(Clone, Debug)]
pub struct UndeleteNode {
    id: NodeId,
    config: SfConfig,
    slots: Vec<Slot>,
    live: usize,
    stats: VariantStats,
}

impl UndeleteNode {
    /// Creates a node bootstrapped with the given ids (all live, tagged
    /// dependent per the joining convention).
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap violates the joining rule (`d_L ≤ |ids| ≤
    /// s`, even).
    #[must_use]
    pub fn new(id: NodeId, config: SfConfig, bootstrap: &[NodeId]) -> Self {
        assert!(bootstrap.len() >= config.lower_threshold(), "too few bootstrap ids");
        assert!(bootstrap.len() <= config.view_size(), "too many bootstrap ids");
        assert!(bootstrap.len().is_multiple_of(2), "bootstrap must be even (Observation 5.1)");
        let mut slots = vec![Slot::Empty; config.view_size()];
        for (slot, &id) in slots.iter_mut().zip(bootstrap) {
            *slot = Slot::Live(Entry::dependent(id));
        }
        Self { id, config, slots, live: bootstrap.len(), stats: VariantStats::default() }
    }

    fn tombstone(&mut self, index: usize) -> Entry {
        let Slot::Live(entry) = self.slots[index] else {
            panic!("tombstoning a non-live slot");
        };
        self.slots[index] = Slot::Tombstone(entry);
        self.live -= 1;
        entry
    }

    /// Restores one tombstone chosen uniformly at random, excluding the
    /// given indices. Returns whether an undeletion happened.
    fn undelete_one<R: Rng + ?Sized>(&mut self, rng: &mut R, exclude: (usize, usize)) -> bool {
        let candidates: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|&(k, s)| matches!(s, Slot::Tombstone(_)) && k != exclude.0 && k != exclude.1)
            .map(|(k, _)| k)
            .collect();
        let pick = if candidates.is_empty() {
            // Reservoir exhausted beyond the just-sent entries: fall back
            // to undeleting one of those (= plain duplication).
            let fallback: Vec<usize> = [exclude.0, exclude.1]
                .into_iter()
                .filter(|&k| matches!(self.slots[k], Slot::Tombstone(_)))
                .collect();
            if fallback.is_empty() {
                return false;
            }
            fallback[rng.gen_range(0..fallback.len())]
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        let Slot::Tombstone(mut entry) = self.slots[pick] else { unreachable!() };
        // An undeleted instance is a stale copy of an id that was sent
        // away: label it dependent (Section 2 accounting).
        entry.dependent = true;
        self.slots[pick] = Slot::Live(entry);
        self.live += 1;
        true
    }

    fn store<R: Rng + ?Sized>(&mut self, entry: Entry, rng: &mut R) -> bool {
        // Prefer empty slots; reclaim a tombstone when none remain.
        let empties: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Empty))
            .map(|(k, _)| k)
            .collect();
        let target = if empties.is_empty() {
            let tombs: Vec<usize> = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Slot::Tombstone(_)))
                .map(|(k, _)| k)
                .collect();
            if tombs.is_empty() {
                return false; // fully live: delete, as vanilla S&F would
            }
            tombs[rng.gen_range(0..tombs.len())]
        } else {
            empties[rng.gen_range(0..empties.len())]
        };
        self.slots[target] = Slot::Live(entry);
        self.live += 1;
        true
    }

    /// Number of tombstoned slots (the undeletion reservoir).
    #[must_use]
    pub fn tombstones(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, Slot::Tombstone(_))).count()
    }
}

impl SfVariant for UndeleteNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn out_degree(&self) -> usize {
        self.live
    }

    fn view_ids(&self) -> Vec<NodeId> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Live(e) => Some(e.id),
                _ => None,
            })
            .collect()
    }

    fn dependent_entries(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Live(e) if e.dependent || e.id == self.id))
            .count()
    }

    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<VariantOutgoing> {
        self.stats.initiated += 1;
        let s = self.slots.len();
        let i = rng.gen_range(0..s);
        let mut j = rng.gen_range(0..s - 1);
        if j >= i {
            j += 1;
        }
        let (Slot::Live(target), Slot::Live(payload)) = (self.slots[i], self.slots[j]) else {
            self.stats.self_loops += 1;
            return None;
        };
        let compensate = self.live <= self.config.lower_threshold();
        self.tombstone(i);
        self.tombstone(j);
        if compensate {
            self.stats.compensations += 1;
            // Restore the live degree from the reservoir.
            let first = self.undelete_one(rng, (i, j));
            let second = self.undelete_one(rng, (i, j));
            debug_assert!(first && second, "the just-sent entries guarantee fallbacks");
        }
        self.stats.sent += 1;
        // Figure 7.1 tag algebra, as in the core protocol: a send without
        // compensation cleanses the transmitted instance; a compensated
        // send labels it dependent (the tombstoned copy may be undeleted).
        Some(VariantOutgoing {
            to: target.id,
            message: VariantMessage {
                sender: self.id,
                payloads: vec![(payload.id, compensate)],
                sender_dependent: compensate,
            },
        })
    }

    fn receive<R: Rng + ?Sized>(&mut self, message: VariantMessage, rng: &mut R) {
        let mut any_stored = false;
        let sender_entry = Entry { id: message.sender, dependent: message.sender_dependent };
        if self.store(sender_entry, rng) {
            any_stored = true;
        }
        for (id, dependent) in message.payloads {
            if self.store(Entry { id, dependent }, rng) {
                any_stored = true;
            }
        }
        if any_stored {
            self.stats.stored += 1;
        } else {
            self.stats.displaced += 1;
        }
    }

    fn stats(&self) -> VariantStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn node(bootstrap: &[u64]) -> UndeleteNode {
        let config = SfConfig::new(10, 2).unwrap();
        let ids: Vec<NodeId> = bootstrap.iter().map(|&r| id(r)).collect();
        UndeleteNode::new(id(0), config, &ids)
    }

    fn send_until_some<R: rand::Rng>(n: &mut UndeleteNode, rng: &mut R) -> VariantOutgoing {
        loop {
            if let Some(out) = n.initiate(rng) {
                return out;
            }
        }
    }

    #[test]
    fn send_tombstones_instead_of_clearing() {
        let mut n = node(&[1, 2, 3, 4]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = send_until_some(&mut n, &mut rng);
        assert_eq!(n.out_degree(), 2);
        assert_eq!(n.tombstones(), 2, "sent entries are retained as tombstones");
        assert!(!out.message.sender_dependent, "no compensation above d_L");
    }

    #[test]
    fn compensation_undeletes_from_the_reservoir() {
        let mut n = node(&[1, 2, 3, 4]);
        let mut rng = StdRng::seed_from_u64(2);
        // First send drops to d = 2 = d_L and leaves 2 tombstones.
        send_until_some(&mut n, &mut rng);
        // Second successful send must compensate: live degree stays 2.
        let out = loop {
            if let Some(out) = n.initiate(&mut rng) {
                break out;
            }
        };
        assert_eq!(n.out_degree(), 2, "undeletion restored the live degree");
        assert!(out.message.sender_dependent);
        assert_eq!(n.stats().compensations, 1);
    }

    #[test]
    fn live_degree_respects_the_band() {
        let config = SfConfig::new(10, 2).unwrap();
        let ids: Vec<NodeId> = (1..=6).map(id).collect();
        let mut n = UndeleteNode::new(id(0), config, &ids);
        let mut rng = StdRng::seed_from_u64(3);
        for k in 0..2_000u64 {
            if k % 3 == 0 {
                n.receive(
                    VariantMessage {
                        sender: id(100 + k),
                        payloads: vec![(id(200 + k), false)],
                        sender_dependent: false,
                    },
                    &mut rng,
                );
            } else {
                n.initiate(&mut rng);
            }
            assert!(n.out_degree() >= 2, "fell below d_L at step {k}");
            assert!(n.out_degree() <= 10);
            assert_eq!(n.out_degree() % 2, 0, "odd live degree at step {k}");
        }
    }

    #[test]
    fn receive_reclaims_tombstones_before_deleting() {
        let config = SfConfig::new(6, 0).unwrap();
        let ids: Vec<NodeId> = (1..=6).map(id).collect();
        let mut n = UndeleteNode::new(id(0), config, &ids);
        let mut rng = StdRng::seed_from_u64(4);
        // Fill: all six slots live. One send → 4 live, 2 tombstones.
        n.initiate(&mut rng).unwrap();
        assert_eq!(n.tombstones(), 2);
        // Receive reclaims the tombstones.
        n.receive(
            VariantMessage {
                sender: id(50),
                payloads: vec![(id(51), false)],
                sender_dependent: false,
            },
            &mut rng,
        );
        assert_eq!(n.out_degree(), 6);
        assert_eq!(n.tombstones(), 0);
        // Now fully live: a further receive is deleted.
        n.receive(
            VariantMessage {
                sender: id(60),
                payloads: vec![(id(61), false)],
                sender_dependent: false,
            },
            &mut rng,
        );
        assert_eq!(n.out_degree(), 6);
        assert_eq!(n.stats().displaced, 1);
    }

    #[test]
    fn undeleted_entries_are_tagged_dependent() {
        let mut n = node(&[1, 2, 3, 4]);
        let mut rng = StdRng::seed_from_u64(5);
        // Retry past empty-slot picks: the first success deletes down to
        // d_L, the second compensates by undeleting.
        loop {
            if n.initiate(&mut rng).is_some() {
                break;
            }
        }
        loop {
            if n.initiate(&mut rng).is_some() {
                break;
            }
        }
        // After compensation the restored entries carry the dependent tag
        // (bootstrap entries were dependent already, so all live are).
        assert_eq!(n.dependent_entries(), n.out_degree());
    }
}
