//! # sandf-variants — the paper's deferred optimizations, implemented
//!
//! Section 5 of Gurevich & Keidar sketches three optimizations and sets
//! them aside because they "would make the protocol harder to analyze …
//! leave optimizations to future work". This crate is that future work:
//!
//! 1. [`UndeleteNode`] — sent ids are *tombstoned*, not cleared, and
//!    compensation *undeletes* stale entries instead of duplicating live
//!    ones;
//! 2. [`ReplaceNode`] — a full receiver overwrites random entries instead
//!    of deleting arrivals;
//! 3. [`BatchedNode`] — `b` payload ids per message (odd `b`, preserving
//!    the Observation 5.1 parity invariant).
//!
//! [`VanillaNode`] adapts the analyzed baseline to the same [`SfVariant`]
//! trait, and [`VariantSim`] runs any population under seeded uniform loss
//! so the `variants_ablation` bench can compare degree balance, dependence,
//! and loss-resilience across all four — quantifying exactly the trade-offs
//! the paper chose not to analyze.
//!
//! ## Example
//!
//! ```
//! use sandf_core::{NodeId, SfConfig};
//! use sandf_variants::{SfVariant, UndeleteNode, VariantSim};
//!
//! let config = SfConfig::new(16, 6)?;
//! let nodes: Vec<UndeleteNode> = (0..32usize)
//!     .map(|i| {
//!         let boot: Vec<NodeId> =
//!             (1..=8).map(|d| NodeId::new(((i + d) % 32) as u64)).collect();
//!         UndeleteNode::new(NodeId::new(i as u64), config, &boot)
//!     })
//!     .collect();
//! let mut sim = VariantSim::new(nodes, 0.05, 7);
//! sim.run_rounds(100);
//! assert!(sim.metrics().connected);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batched;
pub mod behaviors;
mod harness;
mod replace;
mod traits;
mod undelete;
mod vanilla;

pub use batched::BatchedNode;
pub use behaviors::{BatchedBehavior, ReplaceBehavior, UndeleteBehavior};
pub use harness::{VariantMetrics, VariantSim};
pub use replace::ReplaceNode;
pub use traits::{SfVariant, VariantMessage, VariantOutgoing, VariantStats};
pub use undelete::UndeleteNode;
pub use vanilla::VanillaNode;
