//! The Section 5 variants as [`ProtocolBehavior`]s, executable on the
//! fast arena engines ([`FlatSimulation`](sandf_sim::FlatSimulation),
//! [`ParSimulation`](sandf_sim::ParSimulation)).
//!
//! These mirror [`ReplaceNode`](crate::ReplaceNode),
//! [`UndeleteNode`](crate::UndeleteNode), and
//! [`BatchedNode`](crate::BatchedNode) over a [`SlotView`] window: the
//! same slot draws and the same multiset dynamics, with the `Option`/enum
//! slot representation replaced by the arena's [`EMPTY_SLOT`] sentinel and
//! [`FLAG_TOMBSTONE`] bit. The vanilla variant needs no re-expression —
//! it *is* [`SfBehavior`].
//!
//! Wire format: [`IdBatch`] with per-payload dependence bits; the
//! sender's own dependence rides in the `kind` field
//! ([`KIND_DEPENDENT_SEND`]), which also lets the engines count
//! compensated sends as duplications via
//! [`ProtocolBehavior::duplicated`].

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::Rng;
use sandf_core::{NodeId, SfConfig};
use sandf_sim::{
    slot_word, IdBatch, ProtocolBehavior, Receipt, SfBehavior, SlotView, EMPTY_SLOT,
    FLAG_DEPENDENT, FLAG_TOMBSTONE,
};

/// [`IdBatch::kind`] for a send whose transmitted instances were cleansed
/// (no compensation happened).
pub const KIND_CLEAN_SEND: u8 = 0;
/// [`IdBatch::kind`] for a compensated send: the sender id (and every
/// payload, via the dep bits) is labeled dependent — Figure 7.1's tag
/// algebra, surfaced to the engine as [`ProtocolBehavior::duplicated`].
pub const KIND_DEPENDENT_SEND: u8 = 1;

fn kind_of(compensated: bool) -> u8 {
    if compensated {
        KIND_DEPENDENT_SEND
    } else {
        KIND_CLEAN_SEND
    }
}

fn dep_flag(dependent: bool) -> u8 {
    if dependent {
        FLAG_DEPENDENT
    } else {
        0
    }
}

/// Draws the vanilla S&F slot pair: `i` uniform over `0..s`, `j` uniform
/// over the remaining `s − 1` slots.
fn draw_pair(s: usize, rng: &mut StdRng) -> (usize, usize) {
    let i = rng.gen_range(0..s);
    let mut j = rng.gen_range(0..s - 1);
    if j >= i {
        j += 1;
    }
    (i, j)
}

/// The S&F bootstrap rule (`d_L ≤ n ≤ s`, even) shared by every variant.
fn validate_sf_bootstrap(config: SfConfig, supplied: usize) -> Result<(), sandf_core::JoinError> {
    SfBehavior.validate_bootstrap(config, supplied)
}

/// Variant 2 (replace-when-full) over the arena: vanilla S&F sends, but a
/// full receiver *overwrites* a uniformly random victim instead of
/// deleting the arrivals — no message is ever wasted, at the price of
/// displacing healthy entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaceBehavior;

impl ReplaceBehavior {
    /// Stores one entry: a random empty slot when one exists, else a
    /// uniformly random victim over *all* slots is overwritten. Returns
    /// whether the store was fresh (no displacement).
    fn put(view: &mut SlotView<'_>, id: NodeId, dependent: bool, rng: &mut StdRng) -> bool {
        if (*view.degree as usize) < view.len() {
            view.insert_into_random_empty(id, dep_flag(dependent), rng);
            true
        } else {
            let victim = rng.gen_range(0..view.len());
            view.set(victim, id, dep_flag(dependent));
            false
        }
    }
}

impl ProtocolBehavior for ReplaceBehavior {
    type Msg = IdBatch;

    fn sender(msg: &IdBatch) -> NodeId {
        msg.sender
    }

    fn duplicated(msg: &IdBatch) -> bool {
        msg.kind == KIND_DEPENDENT_SEND
    }

    fn initiate(
        &self,
        config: SfConfig,
        view: SlotView<'_>,
        rng: &mut StdRng,
    ) -> Option<(NodeId, IdBatch)> {
        let SlotView { id, ids, flags, degree, stats } = view;
        stats.initiated += 1;
        let (i, j) = draw_pair(ids.len(), rng);
        if ids[i] == EMPTY_SLOT || ids[j] == EMPTY_SLOT {
            stats.self_loops += 1;
            return None;
        }
        let target = NodeId::new(u64::from(ids[i]));
        let payload = NodeId::new(u64::from(ids[j]));
        let duplicated = (*degree as usize) <= config.lower_threshold();
        if duplicated {
            stats.duplications += 1;
        } else {
            ids[i] = EMPTY_SLOT;
            flags[i] = 0;
            ids[j] = EMPTY_SLOT;
            flags[j] = 0;
            *degree -= 2;
        }
        stats.sent += 1;
        let mut msg = IdBatch::new(id, kind_of(duplicated));
        msg.push(payload, duplicated);
        Some((target, msg))
    }

    fn receive(
        &self,
        _config: SfConfig,
        mut view: SlotView<'_>,
        msg: IdBatch,
        rng: &mut StdRng,
    ) -> Receipt<IdBatch> {
        let mut all_fresh = Self::put(&mut view, msg.sender, msg.kind == KIND_DEPENDENT_SEND, rng);
        for (id, dependent) in msg.entries() {
            all_fresh &= Self::put(&mut view, id, dependent, rng);
        }
        if all_fresh {
            view.stats.stored += 1;
            Receipt::stored()
        } else {
            // Displacement: something was overwritten. Counted as a
            // deletion (an instance died), matching the VariantStats
            // `displaced` convention.
            view.stats.deletions += 1;
            Receipt::deleted()
        }
    }

    fn validate_bootstrap(
        &self,
        config: SfConfig,
        supplied: usize,
    ) -> Result<(), sandf_core::JoinError> {
        validate_sf_bootstrap(config, supplied)
    }
}

/// Variant 1 (undeletion) over the arena: sent entries become
/// [`FLAG_TOMBSTONE`]d slots instead of clearing; at `d_L` the protocol
/// undeletes two uniformly random tombstones (excluding, with fallback
/// to, the just-sent pair) instead of duplicating; receives prefer empty
/// slots, reclaim tombstones, and only then delete.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UndeleteBehavior;

impl UndeleteBehavior {
    fn is_tombstone(ids: &[u32], flags: &[u8], off: usize) -> bool {
        ids[off] != EMPTY_SLOT && flags[off] & FLAG_TOMBSTONE != 0
    }

    /// Restores one tombstone chosen uniformly at random, excluding the
    /// just-sent pair (falling back to it when the reservoir is otherwise
    /// empty — plain duplication).
    fn undelete_one(view: &mut SlotView<'_>, exclude: (usize, usize), rng: &mut StdRng) -> bool {
        let candidates: Vec<usize> = (0..view.ids.len())
            .filter(|&k| {
                Self::is_tombstone(view.ids, view.flags, k) && k != exclude.0 && k != exclude.1
            })
            .collect();
        let pick = if candidates.is_empty() {
            let fallback: Vec<usize> = [exclude.0, exclude.1]
                .into_iter()
                .filter(|&k| Self::is_tombstone(view.ids, view.flags, k))
                .collect();
            if fallback.is_empty() {
                return false;
            }
            fallback[rng.gen_range(0..fallback.len())]
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        // An undeleted instance is a stale copy of an id that was sent
        // away: label it dependent (Section 2 accounting).
        view.flags[pick] = FLAG_DEPENDENT;
        *view.degree += 1;
        true
    }

    /// Stores one entry: a random empty slot first, a reclaimed tombstone
    /// second, deletion (false) when fully live.
    fn store(view: &mut SlotView<'_>, id: NodeId, dependent: bool, rng: &mut StdRng) -> bool {
        let empties: Vec<usize> =
            (0..view.ids.len()).filter(|&k| view.ids[k] == EMPTY_SLOT).collect();
        let target = if empties.is_empty() {
            let tombs: Vec<usize> = (0..view.ids.len())
                .filter(|&k| Self::is_tombstone(view.ids, view.flags, k))
                .collect();
            if tombs.is_empty() {
                return false; // fully live: delete, as vanilla S&F would
            }
            tombs[rng.gen_range(0..tombs.len())]
        } else {
            empties[rng.gen_range(0..empties.len())]
        };
        view.ids[target] = slot_word(id);
        view.flags[target] = dep_flag(dependent);
        *view.degree += 1;
        true
    }
}

impl ProtocolBehavior for UndeleteBehavior {
    type Msg = IdBatch;

    fn sender(msg: &IdBatch) -> NodeId {
        msg.sender
    }

    fn duplicated(msg: &IdBatch) -> bool {
        msg.kind == KIND_DEPENDENT_SEND
    }

    fn initiate(
        &self,
        config: SfConfig,
        view: SlotView<'_>,
        rng: &mut StdRng,
    ) -> Option<(NodeId, IdBatch)> {
        let SlotView { id, ids, flags, degree, stats } = view;
        stats.initiated += 1;
        let (i, j) = draw_pair(ids.len(), rng);
        let live = |k: usize| ids[k] != EMPTY_SLOT && flags[k] & FLAG_TOMBSTONE == 0;
        if !live(i) || !live(j) {
            stats.self_loops += 1;
            return None;
        }
        let target = NodeId::new(u64::from(ids[i]));
        let payload = NodeId::new(u64::from(ids[j]));
        let compensate = (*degree as usize) <= config.lower_threshold();
        // Tombstone instead of clearing: the entries stay as a reservoir.
        flags[i] |= FLAG_TOMBSTONE;
        flags[j] |= FLAG_TOMBSTONE;
        *degree -= 2;
        if compensate {
            stats.duplications += 1;
            let mut view = SlotView { id, ids, flags, degree, stats };
            let first = Self::undelete_one(&mut view, (i, j), rng);
            let second = Self::undelete_one(&mut view, (i, j), rng);
            debug_assert!(first && second, "the just-sent entries guarantee fallbacks");
        }
        stats.sent += 1;
        let mut msg = IdBatch::new(id, kind_of(compensate));
        msg.push(payload, compensate);
        Some((target, msg))
    }

    fn receive(
        &self,
        _config: SfConfig,
        mut view: SlotView<'_>,
        msg: IdBatch,
        rng: &mut StdRng,
    ) -> Receipt<IdBatch> {
        let mut any_stored =
            Self::store(&mut view, msg.sender, msg.kind == KIND_DEPENDENT_SEND, rng);
        for (id, dependent) in msg.entries() {
            any_stored |= Self::store(&mut view, id, dependent, rng);
        }
        if any_stored {
            view.stats.stored += 1;
            Receipt::stored()
        } else {
            view.stats.deletions += 1;
            Receipt::deleted()
        }
    }

    fn validate_bootstrap(
        &self,
        config: SfConfig,
        supplied: usize,
    ) -> Result<(), sandf_core::JoinError> {
        validate_sf_bootstrap(config, supplied)
    }
}

/// Variant 3 (batched sends) over the arena: each action samples `b + 1`
/// distinct slots (one target, `b` payloads), clears them all on a clean
/// send, and compensates (keeps them, labeled dependent) when clearing
/// would cross `d_L`. A receiver needs `1 + b` free slots or deletes the
/// whole batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchedBehavior {
    /// Ids cleared per send alongside the target (odd, `< s − d_L`, and
    /// ≤ [`IdBatch::CAPACITY`]).
    pub batch: usize,
}

impl BatchedBehavior {
    /// Creates the behavior with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is even or exceeds [`IdBatch::CAPACITY`]. The
    /// band constraint (`batch < s − d_L`) is checked per-view at
    /// initiate time via `debug_assert`.
    #[must_use]
    pub fn new(batch: usize) -> Self {
        assert!(batch % 2 == 1, "batch size must be odd to preserve parity");
        assert!(batch <= IdBatch::CAPACITY, "batch exceeds IdBatch capacity {}", IdBatch::CAPACITY);
        Self { batch }
    }
}

impl ProtocolBehavior for BatchedBehavior {
    type Msg = IdBatch;

    fn sender(msg: &IdBatch) -> NodeId {
        msg.sender
    }

    fn duplicated(msg: &IdBatch) -> bool {
        msg.kind == KIND_DEPENDENT_SEND
    }

    fn initiate(
        &self,
        config: SfConfig,
        view: SlotView<'_>,
        rng: &mut StdRng,
    ) -> Option<(NodeId, IdBatch)> {
        let SlotView { id, ids, flags, degree, stats } = view;
        debug_assert!(
            self.batch < config.view_size() - config.lower_threshold(),
            "batch too large for the degree band"
        );
        stats.initiated += 1;
        let picks = sample(rng, ids.len(), self.batch + 1).into_vec();
        if picks.iter().any(|&k| ids[k] == EMPTY_SLOT) {
            stats.self_loops += 1;
            return None;
        }
        let target = NodeId::new(u64::from(ids[picks[0]]));
        // Clearing 1 + b entries must not cross d_L.
        let duplicated = (*degree as usize) < config.lower_threshold() + self.batch + 1;
        if duplicated {
            stats.duplications += 1;
        }
        // Read the payload ids before any clearing.
        let mut msg = IdBatch::new(id, kind_of(duplicated));
        for &k in &picks[1..] {
            msg.push(NodeId::new(u64::from(ids[k])), duplicated);
        }
        if !duplicated {
            for &k in &picks {
                ids[k] = EMPTY_SLOT;
                flags[k] = 0;
            }
            *degree -= (self.batch + 1) as u32;
        }
        stats.sent += 1;
        Some((target, msg))
    }

    fn receive(
        &self,
        _config: SfConfig,
        view: SlotView<'_>,
        msg: IdBatch,
        rng: &mut StdRng,
    ) -> Receipt<IdBatch> {
        let SlotView { id: _, ids, flags, degree, stats } = view;
        let arriving = 1 + msg.len as usize;
        if ids.len() - (*degree as usize) < arriving {
            stats.deletions += 1;
            return Receipt::deleted();
        }
        let empties: Vec<usize> = (0..ids.len()).filter(|&k| ids[k] == EMPTY_SLOT).collect();
        let chosen = sample(rng, empties.len(), arriving).into_vec();
        let mut entries = Vec::with_capacity(arriving);
        entries.push((msg.sender, msg.kind == KIND_DEPENDENT_SEND));
        entries.extend(msg.entries());
        for (&slot_pick, (id, dependent)) in chosen.iter().zip(entries) {
            ids[empties[slot_pick]] = slot_word(id);
            flags[empties[slot_pick]] = dep_flag(dependent);
        }
        *degree += arriving as u32;
        stats.stored += 1;
        Receipt::stored()
    }

    fn validate_bootstrap(
        &self,
        config: SfConfig,
        supplied: usize,
    ) -> Result<(), sandf_core::JoinError> {
        validate_sf_bootstrap(config, supplied)
    }
}
