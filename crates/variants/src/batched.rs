//! Variant 3 (Section 5, optimization 3): "more than two ids could be sent
//! in a message."
//!
//! Each action selects `1 + b` distinct slots (a target plus `b` payloads,
//! `b` odd so outdegree parity survives), ships all payloads in one
//! message, and clears the selected slots unless that would push the
//! outdegree below `d_L` (then everything is duplicated). The receiver
//! stores all `1 + b` ids when it has room, otherwise deletes them all —
//! a direct generalization of Figure 5.1 that amortizes per-message
//! overhead at the cost of coarser (±(b+1)) degree moves and bigger losses
//! per dropped message.

use rand::seq::index::sample;
use rand::Rng;
use sandf_core::{Entry, NodeId, SfConfig};

use crate::traits::{SfVariant, VariantMessage, VariantOutgoing, VariantStats};

/// An S&F node sending `b` payload ids per message.
#[derive(Clone, Debug)]
pub struct BatchedNode {
    id: NodeId,
    config: SfConfig,
    batch: usize,
    slots: Vec<Option<Entry>>,
    occupied: usize,
    stats: VariantStats,
}

impl BatchedNode {
    /// Creates a node with batch size `b` (payload ids per message).
    ///
    /// # Panics
    ///
    /// Panics if `b` is even (parity, Observation 5.1), `b + 1 > s − d_L`
    /// (no legal non-duplicating send would exist), or the bootstrap
    /// violates the joining rule.
    #[must_use]
    pub fn new(id: NodeId, config: SfConfig, batch: usize, bootstrap: &[NodeId]) -> Self {
        assert!(batch % 2 == 1, "batch size must be odd to preserve parity");
        assert!(
            batch < config.view_size() - config.lower_threshold(),
            "batch too large for the degree band"
        );
        assert!(bootstrap.len() >= config.lower_threshold(), "too few bootstrap ids");
        assert!(bootstrap.len() <= config.view_size(), "too many bootstrap ids");
        assert!(bootstrap.len().is_multiple_of(2), "bootstrap must be even");
        let mut slots = vec![None; config.view_size()];
        for (slot, &id) in slots.iter_mut().zip(bootstrap) {
            *slot = Some(Entry::dependent(id));
        }
        Self { id, config, batch, slots, occupied: bootstrap.len(), stats: VariantStats::default() }
    }

    /// The configured batch size.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl SfVariant for BatchedNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn out_degree(&self) -> usize {
        self.occupied
    }

    fn view_ids(&self) -> Vec<NodeId> {
        self.slots.iter().flatten().map(|e| e.id).collect()
    }

    fn dependent_entries(&self) -> usize {
        self.slots.iter().flatten().filter(|e| e.dependent || e.id == self.id).count()
    }

    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<VariantOutgoing> {
        self.stats.initiated += 1;
        let picks = sample(rng, self.slots.len(), self.batch + 1).into_vec();
        let entries: Option<Vec<Entry>> = picks.iter().map(|&k| self.slots[k]).collect();
        let Some(entries) = entries else {
            self.stats.self_loops += 1;
            return None;
        };
        let target = entries[0];
        // Clearing 1 + b entries must not cross d_L.
        let duplicated = self.occupied < self.config.lower_threshold() + self.batch + 1;
        if duplicated {
            self.stats.compensations += 1;
        } else {
            for &k in &picks {
                self.slots[k] = None;
            }
            self.occupied -= self.batch + 1;
        }
        self.stats.sent += 1;
        Some(VariantOutgoing {
            to: target.id,
            message: VariantMessage {
                sender: self.id,
                // Figure 7.1 tag algebra: duplication labels the transmitted
                // instances dependent, a clean send cleanses them.
                payloads: entries[1..].iter().map(|e| (e.id, duplicated)).collect(),
                sender_dependent: duplicated,
            },
        })
    }

    fn receive<R: Rng + ?Sized>(&mut self, message: VariantMessage, rng: &mut R) {
        let arriving = 1 + message.payloads.len();
        if self.slots.len() - self.occupied < arriving {
            self.stats.displaced += 1;
            return;
        }
        let empties: Vec<usize> =
            self.slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(k, _)| k).collect();
        let chosen = sample(rng, empties.len(), arriving).into_vec();
        let mut entries = Vec::with_capacity(arriving);
        entries.push(Entry { id: message.sender, dependent: message.sender_dependent });
        entries.extend(message.payloads.iter().map(|&(id, dependent)| Entry { id, dependent }));
        for (&slot_pick, entry) in chosen.iter().zip(entries) {
            self.slots[empties[slot_pick]] = Some(entry);
        }
        self.occupied += arriving;
        self.stats.stored += 1;
    }

    fn stats(&self) -> VariantStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn node(batch: usize) -> BatchedNode {
        let config = SfConfig::new(16, 2).unwrap();
        let ids: Vec<NodeId> = (1..=10).map(id).collect();
        BatchedNode::new(id(0), config, batch, &ids)
    }

    #[test]
    fn sends_batch_payloads() {
        let mut n = node(3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = loop {
            if let Some(o) = n.initiate(&mut rng) {
                break o;
            }
        };
        assert_eq!(out.message.payloads.len(), 3);
        assert_eq!(n.out_degree(), 6, "cleared 4 entries");
    }

    #[test]
    fn duplicates_near_the_threshold() {
        let config = SfConfig::new(16, 2).unwrap();
        let ids: Vec<NodeId> = (1..=4).map(id).collect();
        let mut n = BatchedNode::new(id(0), config, 3, &ids);
        let mut rng = StdRng::seed_from_u64(2);
        // occupied = 4 < d_L + b + 1 = 6: must duplicate.
        let out = loop {
            if let Some(o) = n.initiate(&mut rng) {
                break o;
            }
        };
        assert!(out.message.sender_dependent);
        assert_eq!(n.out_degree(), 4);
    }

    #[test]
    fn receive_is_all_or_nothing() {
        let config = SfConfig::new(8, 0).unwrap();
        let ids: Vec<NodeId> = (1..=6).map(id).collect();
        let mut n = BatchedNode::new(id(0), config, 3, &ids);
        let mut rng = StdRng::seed_from_u64(3);
        // 2 empty slots < 4 arriving ids: delete all.
        n.receive(
            VariantMessage {
                sender: id(50),
                payloads: vec![(id(51), false), (id(52), false), (id(53), false)],
                sender_dependent: false,
            },
            &mut rng,
        );
        assert_eq!(n.out_degree(), 6);
        assert_eq!(n.stats().displaced, 1);
    }

    #[test]
    fn band_and_parity_invariants() {
        let mut n = node(3);
        let mut rng = StdRng::seed_from_u64(4);
        for k in 0..2_000u64 {
            if k % 3 == 0 {
                n.receive(
                    VariantMessage {
                        sender: id(100 + k),
                        payloads: vec![
                            (id(200 + k), false),
                            (id(300 + k), false),
                            (id(400 + k), false),
                        ],
                        sender_dependent: false,
                    },
                    &mut rng,
                );
            } else {
                n.initiate(&mut rng);
            }
            assert!(n.out_degree() >= 2 && n.out_degree() <= 16);
            assert_eq!(n.out_degree() % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_batch() {
        let config = SfConfig::new(16, 2).unwrap();
        let _ = BatchedNode::new(id(0), config, 2, &[id(1), id(2)]);
    }
}
