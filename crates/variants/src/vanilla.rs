//! Vanilla S&F behind the [`SfVariant`] trait, so the ablation harness can
//! compare the optimizations against the analyzed baseline.

use rand::Rng;
use sandf_core::{InitiateOutcome, Message, NodeId, SfConfig, SfNode};

use crate::traits::{SfVariant, VariantMessage, VariantOutgoing, VariantStats};

/// The unmodified Figure 5.1 protocol as a variant.
#[derive(Clone, Debug)]
pub struct VanillaNode {
    node: SfNode,
}

impl VanillaNode {
    /// Creates a vanilla node bootstrapped with the given ids.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap violates the joining rule.
    #[must_use]
    pub fn new(id: NodeId, config: SfConfig, bootstrap: &[NodeId]) -> Self {
        Self {
            node: SfNode::with_view(id, config, bootstrap)
                .expect("bootstrap violates the joining rule"),
        }
    }

    /// The wrapped core node.
    #[must_use]
    pub fn inner(&self) -> &SfNode {
        &self.node
    }
}

impl SfVariant for VanillaNode {
    fn id(&self) -> NodeId {
        self.node.id()
    }

    fn out_degree(&self) -> usize {
        self.node.out_degree()
    }

    fn view_ids(&self) -> Vec<NodeId> {
        self.node.view().ids().collect()
    }

    fn dependent_entries(&self) -> usize {
        self.node.view().dependent_entries(self.node.id())
    }

    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<VariantOutgoing> {
        match self.node.initiate(rng) {
            InitiateOutcome::SelfLoop => None,
            InitiateOutcome::Sent { to, message, duplicated, .. } => Some(VariantOutgoing {
                to,
                message: VariantMessage {
                    sender: message.sender,
                    payloads: vec![(message.payload, message.dependent)],
                    sender_dependent: duplicated,
                },
            }),
        }
    }

    fn receive<R: Rng + ?Sized>(&mut self, message: VariantMessage, rng: &mut R) {
        // Vanilla S&F carries exactly one payload; extra payloads from a
        // mixed-variant experiment are ignored rather than mis-stored.
        if let Some(&(payload, dependent)) = message.payloads.first() {
            self.node.receive(Message::new(message.sender, payload, dependent), rng);
        }
    }

    fn stats(&self) -> VariantStats {
        let s = self.node.stats();
        VariantStats {
            initiated: s.initiated,
            self_loops: s.self_loops,
            sent: s.sent,
            compensations: s.duplications,
            stored: s.stored,
            displaced: s.deletions,
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn adapter_mirrors_core_behavior() {
        let config = SfConfig::new(8, 2).unwrap();
        let ids: Vec<NodeId> = (1..=4).map(NodeId::new).collect();
        let mut n = VanillaNode::new(NodeId::new(0), config, &ids);
        let mut rng = StdRng::seed_from_u64(1);
        // Slot picks are uniform over all slots, so initiate can fizzle on
        // an empty pick; retry until a send happens.
        let out = loop {
            if let Some(o) = n.initiate(&mut rng) {
                break o;
            }
        };
        assert_eq!(out.message.payloads.len(), 1);
        assert_eq!(n.out_degree(), 2);
        assert_eq!(n.stats().sent, 1);
    }

    #[test]
    fn receive_round_trip() {
        let config = SfConfig::new(8, 2).unwrap();
        let ids: Vec<NodeId> = (1..=2).map(NodeId::new).collect();
        let mut n = VanillaNode::new(NodeId::new(0), config, &ids);
        let mut rng = StdRng::seed_from_u64(2);
        n.receive(
            VariantMessage {
                sender: NodeId::new(9),
                payloads: vec![(NodeId::new(8), true)],
                sender_dependent: true,
            },
            &mut rng,
        );
        assert_eq!(n.out_degree(), 4);
        assert!(n.view_ids().contains(&NodeId::new(9)));
    }
}
