//! Variant 2 (Section 5, optimization 2): "instead of discarding received
//! ids when the view is full, the protocol could replace some existing view
//! entries with new ids."
//!
//! Everything else is vanilla S&F; only the full-view receive path changes:
//! two uniformly random existing entries are overwritten instead of the
//! arrivals being deleted. This keeps fresh information flowing at the cost
//! of destroying in-view instances (whose senders believe they still
//! exist), trading deletion-loss for a different flavor of churn.

use rand::Rng;
use sandf_core::{Entry, NodeId, SfConfig};

use crate::traits::{SfVariant, VariantMessage, VariantOutgoing, VariantStats};

/// An S&F node that overwrites random entries when its view is full.
#[derive(Clone, Debug)]
pub struct ReplaceNode {
    id: NodeId,
    config: SfConfig,
    slots: Vec<Option<Entry>>,
    occupied: usize,
    stats: VariantStats,
}

impl ReplaceNode {
    /// Creates a node bootstrapped with the given ids.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap violates the joining rule.
    #[must_use]
    pub fn new(id: NodeId, config: SfConfig, bootstrap: &[NodeId]) -> Self {
        assert!(bootstrap.len() >= config.lower_threshold(), "too few bootstrap ids");
        assert!(bootstrap.len() <= config.view_size(), "too many bootstrap ids");
        assert!(bootstrap.len().is_multiple_of(2), "bootstrap must be even (Observation 5.1)");
        let mut slots = vec![None; config.view_size()];
        for (slot, &id) in slots.iter_mut().zip(bootstrap) {
            *slot = Some(Entry::dependent(id));
        }
        Self { id, config, slots, occupied: bootstrap.len(), stats: VariantStats::default() }
    }

    fn put<R: Rng + ?Sized>(&mut self, entry: Entry, rng: &mut R) -> bool {
        let empties: Vec<usize> =
            self.slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(k, _)| k).collect();
        if empties.is_empty() {
            // The replacement path: overwrite a random occupied slot.
            let victim = rng.gen_range(0..self.slots.len());
            self.slots[victim] = Some(entry);
            false
        } else {
            let k = empties[rng.gen_range(0..empties.len())];
            self.slots[k] = Some(entry);
            self.occupied += 1;
            true
        }
    }
}

impl SfVariant for ReplaceNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn out_degree(&self) -> usize {
        self.occupied
    }

    fn view_ids(&self) -> Vec<NodeId> {
        self.slots.iter().flatten().map(|e| e.id).collect()
    }

    fn dependent_entries(&self) -> usize {
        self.slots.iter().flatten().filter(|e| e.dependent || e.id == self.id).count()
    }

    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<VariantOutgoing> {
        self.stats.initiated += 1;
        let s = self.slots.len();
        let i = rng.gen_range(0..s);
        let mut j = rng.gen_range(0..s - 1);
        if j >= i {
            j += 1;
        }
        let (Some(target), Some(payload)) = (self.slots[i], self.slots[j]) else {
            self.stats.self_loops += 1;
            return None;
        };
        let duplicated = self.occupied <= self.config.lower_threshold();
        if duplicated {
            self.stats.compensations += 1;
        } else {
            self.slots[i] = None;
            self.slots[j] = None;
            self.occupied -= 2;
        }
        self.stats.sent += 1;
        Some(VariantOutgoing {
            to: target.id,
            message: VariantMessage {
                sender: self.id,
                payloads: vec![(payload.id, duplicated)],
                sender_dependent: duplicated,
            },
        })
    }

    fn receive<R: Rng + ?Sized>(&mut self, message: VariantMessage, rng: &mut R) {
        let mut all_fresh = true;
        let sender = Entry { id: message.sender, dependent: message.sender_dependent };
        all_fresh &= self.put(sender, rng);
        for (id, dependent) in message.payloads {
            all_fresh &= self.put(Entry { id, dependent }, rng);
        }
        if all_fresh {
            self.stats.stored += 1;
        } else {
            self.stats.displaced += 1;
        }
    }

    fn stats(&self) -> VariantStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn full_node() -> ReplaceNode {
        let config = SfConfig::new(6, 0).unwrap();
        let ids: Vec<NodeId> = (1..=6).map(id).collect();
        ReplaceNode::new(id(0), config, &ids)
    }

    #[test]
    fn full_view_replaces_instead_of_deleting() {
        let mut n = full_node();
        let mut rng = StdRng::seed_from_u64(1);
        n.receive(
            VariantMessage {
                sender: id(50),
                payloads: vec![(id(51), false)],
                sender_dependent: false,
            },
            &mut rng,
        );
        assert_eq!(n.out_degree(), 6, "view stays full");
        let ids = n.view_ids();
        // The second arrival can legally evict the first (victims are
        // uniform over all slots), but the last one stored always survives
        // and at least one original entry must have been overwritten.
        assert!(ids.contains(&id(51)), "last arrival was stored");
        assert!((1..=6).any(|raw| !ids.contains(&id(raw))), "an original entry was replaced");
        assert_eq!(n.stats().displaced, 1);
    }

    #[test]
    fn initiate_matches_vanilla_semantics() {
        let config = SfConfig::new(8, 2).unwrap();
        let mut n = ReplaceNode::new(id(0), config, &[id(1), id(2), id(3), id(4)]);
        let mut rng = StdRng::seed_from_u64(2);
        // Initiation picks slots uniformly and returns None on an empty
        // pick; retry until a send actually happens.
        let out = loop {
            if let Some(o) = n.initiate(&mut rng) {
                break o;
            }
        };
        assert_eq!(n.out_degree(), 2);
        assert!(!out.message.sender_dependent);
        // At d_L the next send duplicates.
        let out = loop {
            if let Some(o) = n.initiate(&mut rng) {
                break o;
            }
        };
        assert!(out.message.sender_dependent);
        assert_eq!(n.out_degree(), 2);
    }

    #[test]
    fn band_invariant_holds() {
        let config = SfConfig::new(8, 2).unwrap();
        let mut n = ReplaceNode::new(id(0), config, &[id(1), id(2), id(3), id(4)]);
        let mut rng = StdRng::seed_from_u64(3);
        for k in 0..2_000u64 {
            if k % 2 == 0 {
                n.receive(
                    VariantMessage {
                        sender: id(100 + k),
                        payloads: vec![(id(200 + k), false)],
                        sender_dependent: false,
                    },
                    &mut rng,
                );
            } else {
                n.initiate(&mut rng);
            }
            assert!(n.out_degree() >= 2 && n.out_degree() <= 8);
            assert_eq!(n.out_degree() % 2, 0);
        }
    }
}
