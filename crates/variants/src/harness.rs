//! A seeded lossy harness driving any [`SfVariant`] population, with the
//! metrics the ablation bench reports.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sandf_core::NodeId;
use sandf_graph::{DegreeStats, MembershipGraph};

use crate::traits::{SfVariant, VariantStats};

/// A deterministic simulation over variant nodes (central-entity model,
/// uniform i.i.d. loss — the same execution semantics as `sandf-sim`).
#[derive(Clone, Debug)]
pub struct VariantSim<V> {
    nodes: HashMap<NodeId, V>,
    order: Vec<NodeId>,
    loss: f64,
    rng: StdRng,
}

/// Snapshot metrics for the ablation comparison.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct VariantMetrics {
    /// Mean live outdegree.
    pub mean_out: f64,
    /// Indegree standard deviation (load balance, Property M2).
    pub in_std: f64,
    /// Fraction of live entries labeled dependent (tags + self-edges;
    /// Property M4's complement).
    pub dependent_fraction: f64,
    /// Total live id instances.
    pub total_ids: usize,
    /// Aggregate event counters.
    pub stats: VariantStats,
    /// Whether the live membership graph is weakly connected.
    pub connected: bool,
}

impl<V: SfVariant> VariantSim<V> {
    /// Creates a harness over the given nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, ids repeat, or `loss ∉ [0, 1]`.
    #[must_use]
    pub fn new(nodes: Vec<V>, loss: f64, seed: u64) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        let order: Vec<NodeId> = nodes.iter().map(SfVariant::id).collect();
        let map: HashMap<NodeId, V> = nodes.into_iter().map(|n| (n.id(), n)).collect();
        assert_eq!(map.len(), order.len(), "duplicate node ids");
        Self { nodes: map, order, loss, rng: StdRng::seed_from_u64(seed) }
    }

    /// One step: a random node initiates; its message is delivered unless
    /// lost.
    pub fn step(&mut self) {
        let initiator = self.order[self.rng.gen_range(0..self.order.len())];
        let Some(out) = self
            .nodes
            .get_mut(&initiator)
            .expect("order tracks the node map")
            .initiate(&mut self.rng)
        else {
            return;
        };
        if self.loss > 0.0 && self.rng.gen_bool(self.loss) {
            return;
        }
        if let Some(receiver) = self.nodes.get_mut(&out.to) {
            receiver.receive(out.message, &mut self.rng);
        }
    }

    /// One round: `n` steps.
    pub fn round(&mut self) {
        for _ in 0..self.order.len() {
            self.step();
        }
    }

    /// Runs `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// The nodes, in registration order.
    pub fn nodes(&self) -> impl Iterator<Item = &V> {
        self.order.iter().map(|id| &self.nodes[id])
    }

    /// Snapshot metrics.
    #[must_use]
    pub fn metrics(&self) -> VariantMetrics {
        let graph = MembershipGraph::from_views(
            self.order.iter().map(|id| (*id, self.nodes[id].view_ids())),
        );
        let in_stats = DegreeStats::from_samples(&graph.in_degrees());
        let out_stats = DegreeStats::from_samples(&graph.out_degrees());
        let mut total_entries = 0usize;
        let mut dependent = 0usize;
        let mut stats = VariantStats::default();
        for node in self.nodes.values() {
            total_entries += node.out_degree();
            dependent += node.dependent_entries();
            let s = node.stats();
            stats.initiated += s.initiated;
            stats.self_loops += s.self_loops;
            stats.sent += s.sent;
            stats.compensations += s.compensations;
            stats.stored += s.stored;
            stats.displaced += s.displaced;
        }
        VariantMetrics {
            mean_out: out_stats.mean,
            in_std: in_stats.std_dev(),
            dependent_fraction: if total_entries == 0 {
                0.0
            } else {
                dependent as f64 / total_entries as f64
            },
            total_ids: total_entries,
            stats,
            connected: graph.is_weakly_connected(),
        }
    }
}

#[cfg(test)]
mod tests {
    use sandf_core::SfConfig;

    use crate::batched::BatchedNode;
    use crate::replace::ReplaceNode;
    use crate::undelete::UndeleteNode;
    use crate::vanilla::VanillaNode;

    use super::*;

    fn bootstrap(i: usize, n: usize, k: usize) -> Vec<NodeId> {
        (1..=k).map(|d| NodeId::new(((i + d) % n) as u64)).collect()
    }

    fn config() -> SfConfig {
        SfConfig::new(16, 6).unwrap()
    }

    #[test]
    fn vanilla_population_is_stable_under_loss() {
        let n = 64;
        let nodes: Vec<VanillaNode> = (0..n)
            .map(|i| VanillaNode::new(NodeId::new(i as u64), config(), &bootstrap(i, n, 10)))
            .collect();
        let mut sim = VariantSim::new(nodes, 0.05, 1);
        sim.run_rounds(200);
        let m = sim.metrics();
        assert!(m.connected);
        assert!(m.mean_out >= 6.0);
        assert!(m.stats.compensations > 0);
    }

    #[test]
    fn undelete_variant_survives_loss_with_reservoir() {
        let n = 64;
        let nodes: Vec<UndeleteNode> = (0..n)
            .map(|i| UndeleteNode::new(NodeId::new(i as u64), config(), &bootstrap(i, n, 10)))
            .collect();
        let mut sim = VariantSim::new(nodes, 0.05, 2);
        sim.run_rounds(200);
        let m = sim.metrics();
        assert!(m.connected, "undelete variant partitioned");
        assert!(m.mean_out >= 6.0);
    }

    #[test]
    fn replace_variant_never_deletes_fresh_ids() {
        let n = 64;
        let nodes: Vec<ReplaceNode> = (0..n)
            .map(|i| ReplaceNode::new(NodeId::new(i as u64), config(), &bootstrap(i, n, 10)))
            .collect();
        let mut sim = VariantSim::new(nodes, 0.05, 3);
        sim.run_rounds(200);
        let m = sim.metrics();
        assert!(m.connected);
        assert!(m.mean_out >= 6.0);
    }

    #[test]
    fn batched_variant_runs_and_balances() {
        let n = 64;
        let config = SfConfig::new(24, 6).unwrap();
        let nodes: Vec<BatchedNode> = (0..n)
            .map(|i| BatchedNode::new(NodeId::new(i as u64), config, 3, &bootstrap(i, n, 12)))
            .collect();
        let mut sim = VariantSim::new(nodes, 0.05, 4);
        sim.run_rounds(200);
        let m = sim.metrics();
        assert!(m.connected);
        assert!(m.mean_out >= 6.0);
        assert!(m.in_std < m.mean_out, "load imbalance: {m:?}");
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let n = 16;
        let nodes: Vec<VanillaNode> = (0..n)
            .map(|i| VanillaNode::new(NodeId::new(i as u64), config(), &bootstrap(i, n, 6)))
            .collect();
        let sim = VariantSim::new(nodes, 0.0, 5);
        let m = sim.metrics();
        assert_eq!(m.total_ids, 16 * 6);
        assert!((m.mean_out - 6.0).abs() < 1e-9);
        assert!(m.dependent_fraction >= 0.99, "bootstrap entries are tagged");
    }
}
