//! The common driving interface for S&F variants.

use rand::Rng;
use sandf_core::NodeId;

/// A variant message: the sender's id plus one or more payload ids. The
/// original protocol always sends exactly one payload; the batched variant
/// (Section 5, optimization 3: "more than two ids could be sent in a
/// message") sends several.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VariantMessage {
    /// The initiator's id (the reinforcement component).
    pub sender: NodeId,
    /// The forwarded ids (the mixing component), tagged with their
    /// dependence labels.
    pub payloads: Vec<(NodeId, bool)>,
    /// Whether the sender's id instance is labeled dependent.
    pub sender_dependent: bool,
}

/// An addressed outgoing variant message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VariantOutgoing {
    /// The destination.
    pub to: NodeId,
    /// The message.
    pub message: VariantMessage,
}

/// Statistics shared by all variants.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VariantStats {
    /// Actions initiated.
    pub initiated: u64,
    /// Self-loop actions (an unusable slot selected).
    pub self_loops: u64,
    /// Messages produced.
    pub sent: u64,
    /// Compensation events: duplications (vanilla/batched), undeletions
    /// (undelete variant).
    pub compensations: u64,
    /// Receives that stored the ids.
    pub stored: u64,
    /// Receives that discarded ids (full view) or overwrote entries
    /// (replace variant).
    pub displaced: u64,
}

/// An S&F-family protocol node driven by the [`VariantSim`](crate::VariantSim)
/// harness.
pub trait SfVariant {
    /// The node's id.
    fn id(&self) -> NodeId;

    /// The *live* outdegree (tombstoned entries excluded).
    fn out_degree(&self) -> usize;

    /// The live view ids, with multiplicity.
    fn view_ids(&self) -> Vec<NodeId>;

    /// Dependent live entries under the Section 2 labeling (tags +
    /// self-edges; the harness adds the duplicate rule).
    fn dependent_entries(&self) -> usize;

    /// Executes one initiate step.
    fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<VariantOutgoing>;

    /// Executes one receive step.
    fn receive<R: Rng + ?Sized>(&mut self, message: VariantMessage, rng: &mut R);

    /// Accumulated statistics.
    fn stats(&self) -> VariantStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_holds_payloads() {
        let m = VariantMessage {
            sender: NodeId::new(1),
            payloads: vec![(NodeId::new(2), false), (NodeId::new(3), true)],
            sender_dependent: false,
        };
        assert_eq!(m.payloads.len(), 2);
        assert_eq!(m.clone(), m);
    }

    #[test]
    fn stats_default_to_zero() {
        assert_eq!(VariantStats::default().initiated, 0);
    }
}
