//! Cross-validation: the Section 6.2 degree Markov chain and the
//! discrete-event simulator must agree on the steady-state degree laws —
//! they are entirely independent implementations of the same system.

use sandf::graph::total_variation;
use sandf::sim::experiment::{steady_state_degrees, ExperimentParams};
use sandf::{DegreeMc, DegreeMcParams, SfConfig};

fn compare(loss: f64, seed: u64) -> (f64, f64, f64) {
    let config = SfConfig::new(16, 6).expect("legal");
    let mc = DegreeMc::solve(DegreeMcParams::new(config, loss)).expect("chain converges");
    let sim =
        steady_state_degrees(&ExperimentParams { n: 800, config, loss, burn_in: 300, seed }, 40, 5);
    let tv_out = total_variation(&mc.out_pmf(), &sim.out_degrees.pmf());
    let mean_gap = (mc.mean_out() - sim.out_degrees.mean()).abs();
    let std_gap = (mc.std_in() - sim.in_degrees.variance().sqrt()).abs();
    (tv_out, mean_gap, std_gap)
}

#[test]
fn degree_mc_matches_simulation_lossless() {
    let (tv, mean_gap, std_gap) = compare(0.0, 1);
    assert!(tv < 0.08, "outdegree TV {tv}");
    assert!(mean_gap < 0.5, "mean gap {mean_gap}");
    assert!(std_gap < 0.8, "indegree std gap {std_gap}");
}

#[test]
fn degree_mc_matches_simulation_at_5pct_loss() {
    let (tv, mean_gap, std_gap) = compare(0.05, 2);
    assert!(tv < 0.08, "outdegree TV {tv}");
    assert!(mean_gap < 0.5, "mean gap {mean_gap}");
    assert!(std_gap < 0.8, "indegree std gap {std_gap}");
}

#[test]
fn both_predict_mean_outdegree_decreasing_in_loss() {
    // Lemma 6.4, confirmed by two independent methods.
    let config = SfConfig::new(16, 6).expect("legal");
    let mut last_mc = f64::INFINITY;
    let mut last_sim = f64::INFINITY;
    for (k, loss) in [0.0, 0.05, 0.15].into_iter().enumerate() {
        let mc = DegreeMc::solve(DegreeMcParams::new(config, loss)).expect("converges");
        let sim = steady_state_degrees(
            &ExperimentParams { n: 400, config, loss, burn_in: 250, seed: 30 + k as u64 },
            25,
            4,
        );
        assert!(mc.mean_out() < last_mc, "MC mean not decreasing at ℓ={loss}");
        assert!(sim.out_degrees.mean() < last_sim + 0.2, "sim mean not decreasing at ℓ={loss}");
        last_mc = mc.mean_out();
        last_sim = sim.out_degrees.mean();
    }
}

#[test]
fn analytical_law_matches_degree_mc_on_the_sum_degree_line() {
    // Section 6.1 vs Section 6.2 on Figure 6.1's setting, scaled down:
    // s = 24, d_L = 0, ℓ = 0, d_s = 24.
    let config = SfConfig::lossless(24).expect("legal");
    let params = DegreeMcParams::new(config, 0.0).with_initial_state(8, 8);
    let mc = DegreeMc::solve(params).expect("converges");
    let law = sandf::AnalyticalDegrees::new(24).expect("even");
    let tv = total_variation(&mc.out_pmf(), law.out_pmf());
    assert!(tv < 0.12, "analytical vs MC outdegree TV {tv}");
    assert!((mc.mean_out() - 8.0).abs() < 0.2, "Lemma 6.3: mean {}", mc.mean_out());
}
