//! Convergence from poor initial topologies: the paper's Properties M2
//! (load balance) and M4 (spatial independence) must emerge "starting from
//! any initial state" that is sufficiently connected.

use sandf::sim::topology;
use sandf::{DegreeStats, SfConfig, Simulation, UniformLoss};

fn converged_from(nodes: Vec<sandf::SfNode>, seed: u64) -> Simulation<UniformLoss> {
    let mut sim = Simulation::new(nodes, UniformLoss::new(0.01).expect("valid"), seed);
    sim.run_rounds(500);
    sim
}

#[test]
fn hub_cluster_balances_out() {
    // Six hubs start with all the indegree (~n/6·d0 each); Property M2
    // demands the system spread that load. The hub-cluster start is the
    // harshest imbalance that still satisfies the paper's joining rule
    // (outdegree ≥ d_L).
    // NOTE: a hub start violates Assumption 7.7 (all views identical →
    // α ≪ 2/3), so the §7.4 connectivity guarantee does not apply and a
    // stray node pair occasionally isolates itself before mixing in
    // (observed in ~1/3 of seeds at d_L = 6). Tolerate up to one such pair;
    // the load-balance claim is about the bulk.
    let config = SfConfig::new(16, 6).expect("legal");
    let n = 200;
    let sim = converged_from(topology::hub_cluster(n, config, 6), 1);
    let graph = sim.graph();
    assert!(graph.weakly_connected_components() <= 2, "more than one straggler component");
    let stats = DegreeStats::from_samples(&graph.in_degrees());
    let hub_in = graph.in_degree(sandf::NodeId::new(0)).expect("hub is live") as f64;
    assert!(
        hub_in < stats.mean + 6.0 * stats.std_dev().max(1.0),
        "hub indegree {hub_in} still an outlier (mean {}, std {})",
        stats.mean,
        stats.std_dev()
    );
    assert!(stats.std_dev() < stats.mean, "indegree spread did not tighten: {stats:?}");
}

#[test]
fn star_below_dl_is_the_documented_pathology() {
    // The star start (outdegree 2 < d_L = 6) violates the Section 5 joining
    // precondition; the paper's convergence guarantees do NOT apply, and
    // indeed healing is glacial. Pin that observed behavior so the builder's
    // documentation stays honest.
    let config = SfConfig::new(16, 6).expect("legal");
    let sim = converged_from(topology::star(200, config), 3);
    let graph = sim.graph();
    let mean_out = DegreeStats::from_samples(&graph.out_degrees()).mean;
    assert!(
        mean_out < 8.0,
        "star healed unexpectedly fast (mean outdegree {mean_out}); update the docs!"
    );
}

#[test]
fn ring_topology_develops_random_structure() {
    let config = SfConfig::new(16, 6).expect("legal");
    let n = 200;
    let sim = converged_from(topology::ring(n, config), 2);
    let graph = sim.graph();
    assert!(graph.is_weakly_connected());
    // A ring has indegree exactly 2 everywhere; after convergence the mean
    // indegree should sit near the steady-state outdegree, far above 2.
    let stats = DegreeStats::from_samples(&graph.in_degrees());
    assert!(stats.mean > 6.0, "views never grew: {stats:?}");
    // Spatial independence: most entries independent despite the fully
    // dependent start.
    let report = sim.dependence();
    assert!(
        report.independent_fraction() > 0.85,
        "dependence stuck at {}",
        report.independent_fraction()
    );
}

#[test]
fn random_topologies_with_different_seeds_converge_to_similar_statistics() {
    let config = SfConfig::new(16, 6).expect("legal");
    let mut means = Vec::new();
    for seed in 0..3u64 {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let nodes = topology::random(150, config, 8, &mut rng);
        let sim = converged_from(nodes, 100 + seed);
        let graph = sim.graph();
        assert!(graph.is_weakly_connected());
        means.push(DegreeStats::from_samples(&graph.out_degrees()).mean);
    }
    let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - means.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 1.0, "steady-state means disagree across seeds: {means:?}");
}

#[test]
fn heavy_loss_does_not_partition_a_well_provisioned_system() {
    // Section 7.4's connectivity conditions: with d_L well above the
    // minimum, even 10% loss keeps the overlay whole.
    let config = SfConfig::new(40, 26).expect("d_L from the paper's connectivity example");
    let nodes = topology::circulant(300, config, 30);
    let mut sim = Simulation::new(nodes, UniformLoss::new(0.1).expect("valid"), 5);
    for _ in 0..10 {
        sim.run_rounds(50);
        assert!(sim.graph().is_weakly_connected(), "partition under loss");
    }
}
