//! Property-based tests of the protocol's structural invariants
//! (Observation 5.1, Lemma 6.2) under arbitrary action interleavings and
//! loss patterns.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sandf::core::InitiateOutcome;
use sandf::{MembershipGraph, Message, NodeId, SfConfig, SfNode};

/// One externally scheduled event.
#[derive(Clone, Debug)]
enum Event {
    /// Node `initiator % n` initiates; the message is delivered unless
    /// `lost`.
    Act { initiator: u8, lost: bool },
    /// Deliver a stale/forged message (adversarial reordering is legal for
    /// a transport that never duplicates — but even duplication must not
    /// break the invariants, so we inject arbitrary messages).
    Inject { to: u8, sender: u8, payload: u8 },
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (any::<u8>(), any::<bool>()).prop_map(|(initiator, lost)| Event::Act { initiator, lost }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(to, sender, payload)| Event::Inject {
            to,
            sender,
            payload
        }),
    ]
}

fn build_system(n: usize, config: SfConfig, d0: usize) -> Vec<SfNode> {
    (0..n as u64)
        .map(|i| {
            let bootstrap: Vec<NodeId> =
                (1..=d0 as u64).map(|k| NodeId::new((i + k) % n as u64)).collect();
            SfNode::with_view(NodeId::new(i), config, &bootstrap).expect("legal bootstrap")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Observation 5.1: outdegrees stay even and inside [d_L, s] no matter
    /// how actions, losses, and injected messages interleave.
    #[test]
    fn observation_5_1_holds_under_arbitrary_schedules(
        events in vec(arb_event(), 1..400),
        seed in any::<u64>(),
    ) {
        let n = 8usize;
        let config = SfConfig::new(12, 4).expect("legal");
        let mut nodes = build_system(n, config, 6);
        let mut rng = StdRng::seed_from_u64(seed);

        for event in events {
            match event {
                Event::Act { initiator, lost } => {
                    let i = initiator as usize % n;
                    let outcome = nodes[i].initiate(&mut rng);
                    if let InitiateOutcome::Sent { to, message, .. } = outcome {
                        if !lost {
                            let j = to.index() % n;
                            nodes[j].receive(message, &mut rng);
                        }
                    }
                }
                Event::Inject { to, sender, payload } => {
                    let j = to as usize % n;
                    let msg = Message::new(
                        NodeId::new(u64::from(sender) % n as u64),
                        NodeId::new(u64::from(payload) % n as u64),
                        false,
                    );
                    nodes[j].receive(msg, &mut rng);
                }
            }
            for node in &nodes {
                let d = node.out_degree();
                prop_assert_eq!(d % 2, 0, "odd outdegree at {}", node.id());
                prop_assert!(d >= config.lower_threshold());
                prop_assert!(d <= config.view_size());
            }
        }
    }

    /// Lemma 6.2: with no loss and d_L = 0, every node's sum degree
    /// d(u) + 2·d_in(u) is invariant under any action schedule.
    #[test]
    fn lemma_6_2_sum_degree_invariant(
        initiators in vec(any::<u8>(), 1..500),
        seed in any::<u64>(),
    ) {
        let n = 8usize;
        let config = SfConfig::lossless(12).expect("legal");
        let mut nodes = build_system(n, config, 4);
        let before = MembershipGraph::from_nodes(&nodes).sum_degrees();
        let mut rng = StdRng::seed_from_u64(seed);

        for initiator in initiators {
            let i = initiator as usize % n;
            let outcome = nodes[i].initiate(&mut rng);
            if let InitiateOutcome::Sent { to, message, .. } = outcome {
                let j = to.index() % n;
                nodes[j].receive(message, &mut rng);
            }
        }
        let after = MembershipGraph::from_nodes(&nodes).sum_degrees();
        prop_assert_eq!(before, after);
    }

    /// Total edge conservation identity: every non-self-loop action without
    /// loss moves exactly zero or ±2 edges; the ledger
    /// `edges = initial − 2·(non-dup sends) + 2·(stores)` always balances.
    #[test]
    fn edge_ledger_balances(
        initiators in vec(any::<u8>(), 1..300),
        losses in vec(any::<bool>(), 300),
        seed in any::<u64>(),
    ) {
        let n = 6usize;
        let config = SfConfig::new(10, 2).expect("legal");
        let mut nodes = build_system(n, config, 4);
        let initial_edges = MembershipGraph::from_nodes(&nodes).edge_count() as i64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut removed = 0i64;
        let mut added = 0i64;

        for (k, initiator) in initiators.iter().enumerate() {
            let i = *initiator as usize % n;
            let outcome = nodes[i].initiate(&mut rng);
            if let InitiateOutcome::Sent { to, message, duplicated, .. } = outcome {
                if !duplicated {
                    removed += 2;
                }
                if !losses[k % losses.len()] {
                    let j = to.index() % n;
                    if !nodes[j].receive(message, &mut rng).is_deleted() {
                        added += 2;
                    }
                }
            }
        }
        let final_edges = MembershipGraph::from_nodes(&nodes).edge_count() as i64;
        prop_assert_eq!(final_edges, initial_edges - removed + added);
    }

    /// The dependence tag algebra: a view never reports more dependent
    /// entries than total entries, whatever happened to it.
    #[test]
    fn dependence_report_is_well_formed(
        initiators in vec(any::<u8>(), 1..200),
        seed in any::<u64>(),
    ) {
        let n = 6usize;
        let config = SfConfig::new(10, 4).expect("legal");
        let mut nodes = build_system(n, config, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        for initiator in initiators {
            let i = initiator as usize % n;
            if let InitiateOutcome::Sent { to, message, .. } = nodes[i].initiate(&mut rng) {
                let j = to.index() % n;
                nodes[j].receive(message, &mut rng);
            }
        }
        let report = sandf::DependenceReport::measure(&nodes);
        prop_assert!(report.dependent_entries <= report.total_entries);
        prop_assert!(report.self_edges <= report.dependent_entries);
        let alpha = report.independent_fraction();
        prop_assert!((0.0..=1.0).contains(&alpha));
    }
}
