//! Property-based tests of the protocol's structural invariants
//! (Observation 5.1, Lemma 6.2) under arbitrary action interleavings and
//! loss patterns — first at the single-node level, then at the engine
//! level, where the same random schedules of rounds, loss rates, and
//! churn run on all three engines (`Simulation`, `FlatSimulation`,
//! `ParSimulation`).

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sandf::core::InitiateOutcome;
use sandf::{
    Engine, FlatSimulation, MembershipGraph, Message, NodeCapacity, NodeId, ParSimulation,
    PerLinkLoss, PhaseFault, RegionalPartition, ScheduledFault, SfConfig, SfNode, Simulation,
    UniformLoss, VictimLoss,
};

/// One externally scheduled event.
#[derive(Clone, Debug)]
enum Event {
    /// Node `initiator % n` initiates; the message is delivered unless
    /// `lost`.
    Act { initiator: u8, lost: bool },
    /// Deliver a stale/forged message (adversarial reordering is legal for
    /// a transport that never duplicates — but even duplication must not
    /// break the invariants, so we inject arbitrary messages).
    Inject { to: u8, sender: u8, payload: u8 },
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (any::<u8>(), any::<bool>()).prop_map(|(initiator, lost)| Event::Act { initiator, lost }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(to, sender, payload)| Event::Inject {
            to,
            sender,
            payload
        }),
    ]
}

fn build_system(n: usize, config: SfConfig, d0: usize) -> Vec<SfNode> {
    (0..n as u64)
        .map(|i| {
            let bootstrap: Vec<NodeId> =
                (1..=d0 as u64).map(|k| NodeId::new((i + k) % n as u64)).collect();
            SfNode::with_view(NodeId::new(i), config, &bootstrap).expect("legal bootstrap")
        })
        .collect()
}

/// System size for the engine-level schedules.
const ENGINE_N: usize = 10;

fn engine_config() -> SfConfig {
    SfConfig::new(12, 4).expect("legal config")
}

/// One engine-level scheduled operation.
#[derive(Clone, Debug)]
enum EngineOp {
    /// Run `1 + (r % 3)` full rounds.
    Rounds(u8),
    /// Remove a live node (skipped when the system is nearly empty).
    Leave(u8),
    /// Join a new node via a live sponsor (skipped if the sponsor cannot
    /// seed a legal bootstrap view).
    Join(u8),
}

fn arb_engine_op() -> impl Strategy<Value = EngineOp> {
    prop_oneof![
        any::<u8>().prop_map(EngineOp::Rounds),
        any::<u8>().prop_map(EngineOp::Leave),
        any::<u8>().prop_map(EngineOp::Join),
    ]
}

/// One randomly drawn fault family for a scenario phase, parameters in
/// their legal ranges (rates arrive as milli-units).
#[derive(Clone, Debug)]
enum FaultKind {
    Uniform { rate_milli: u16 },
    Partition { regions: u64, sever_milli: u16, base_milli: u16 },
    Capacity { salt: u64, slow_milli: u16, period: u64, base_milli: u16 },
    Victims { victims: Vec<u8>, victim_milli: u16, base_milli: u16 },
    PerLink { salt: u64, bad_milli: u16, good_milli: u16 },
}

fn milli(m: u16) -> f64 {
    f64::from(m % 1000) / 1000.0
}

fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        any::<u16>().prop_map(|rate_milli| FaultKind::Uniform { rate_milli }),
        (2..5u64, any::<u16>(), any::<u16>()).prop_map(|(regions, sever_milli, base_milli)| {
            FaultKind::Partition { regions, sever_milli, base_milli }
        }),
        (any::<u64>(), any::<u16>(), 2..5u64, any::<u16>()).prop_map(
            |(salt, slow_milli, period, base_milli)| FaultKind::Capacity {
                salt,
                slow_milli,
                period,
                base_milli
            }
        ),
        (vec(any::<u8>(), 1..4), any::<u16>(), any::<u16>()).prop_map(
            |(victims, victim_milli, base_milli)| FaultKind::Victims {
                victims,
                victim_milli,
                base_milli
            }
        ),
        (any::<u64>(), any::<u16>(), any::<u16>()).prop_map(|(salt, bad_milli, good_milli)| {
            FaultKind::PerLink { salt, bad_milli, good_milli }
        }),
    ]
}

/// Compiles randomly drawn phases into a [`ScheduledFault`]: phase `k`
/// lasts `1 + (rounds_k % 4)` rounds, partition windows align with their
/// phase, and the last phase is open-ended (the schedule's own
/// convention) so arbitrarily long op schedules stay covered.
fn build_schedule(phases: &[(u8, FaultKind)]) -> ScheduledFault {
    let mut compiled = Vec::with_capacity(phases.len());
    let mut start = 0u64;
    for (rounds, kind) in phases {
        let duration = u64::from(rounds % 4) + 1;
        let end = start + duration;
        let fault = match kind {
            FaultKind::Uniform { rate_milli } => PhaseFault::Uniform(
                UniformLoss::new(milli(*rate_milli)).expect("milli rates are legal"),
            ),
            FaultKind::Partition { regions, sever_milli, base_milli } => PhaseFault::Partition(
                RegionalPartition::new(
                    *regions,
                    start,
                    duration,
                    milli(*sever_milli),
                    milli(*base_milli),
                )
                .expect("milli rates are legal"),
            ),
            FaultKind::Capacity { salt, slow_milli, period, base_milli } => PhaseFault::Capacity(
                NodeCapacity::new(*salt, milli(*slow_milli), *period, milli(*base_milli))
                    .expect("milli rates are legal"),
            ),
            FaultKind::Victims { victims, victim_milli, base_milli } => {
                let mut loss = VictimLoss::new(milli(*victim_milli), milli(*base_milli))
                    .expect("milli rates are legal");
                let ids: Vec<NodeId> =
                    victims.iter().map(|&v| NodeId::new(u64::from(v) % ENGINE_N as u64)).collect();
                loss.set_victims(&ids);
                PhaseFault::Victims(loss)
            }
            FaultKind::PerLink { salt, bad_milli, good_milli } => PhaseFault::PerLink(
                PerLinkLoss::new(*salt, 0.5, milli(*good_milli), milli(*bad_milli))
                    .expect("milli rates are legal"),
            ),
        };
        compiled.push((end, fault));
        start = end;
    }
    ScheduledFault::new(compiled)
}

/// Drives one engine through a schedule, checking after every operation:
/// Obs. 5.1 (outdegrees even and inside `[d_L, s]`) and id provenance
/// (every view entry names an id the system actually assigned — never a
/// forged or corrupted id, which would expose e.g. a sentinel leak in the
/// flat/par slot encoding). Views *can* transiently hold their owner's id
/// — duplicate entries let a node be sent its own id — so that is
/// deliberately not asserted; `DependenceReport` tracks it as
/// `self_edges`. Generic over [`Engine`], so one function body covers all
/// three engines.
fn obs_5_1_schedule<E: Engine>(
    mut sim: E,
    ops: &[EngineOp],
    config: SfConfig,
) -> Result<(), TestCaseError> {
    let mut live: Vec<NodeId> = (0..ENGINE_N as u64).map(NodeId::new).collect();
    let mut highest_assigned = ENGINE_N as u64 - 1;
    for op in ops {
        match *op {
            EngineOp::Rounds(r) => sim.run_rounds(1 + usize::from(r % 3)),
            EngineOp::Leave(x) => {
                if live.len() > 3 {
                    let id = live[usize::from(x) % live.len()];
                    prop_assert!(sim.leave(id), "{} should have been live", id);
                    live.retain(|&v| v != id);
                }
            }
            EngineOp::Join(x) => {
                let sponsor = live[usize::from(x) % live.len()];
                if let Ok(joiner) = sim.join_via(sponsor) {
                    highest_assigned = highest_assigned.max(joiner.as_u64());
                    live.push(joiner);
                }
            }
        }
        let graph = sim.graph();
        for d in graph.out_degrees() {
            prop_assert_eq!(d % 2, 0, "odd outdegree");
            prop_assert!(
                d >= config.lower_threshold() && d <= config.view_size(),
                "outdegree {} escaped [{}, {}]",
                d,
                config.lower_threshold(),
                config.view_size()
            );
        }
        for &u in graph.ids() {
            for v in graph.out_neighbors(u).expect("id comes from the graph") {
                prop_assert!(
                    v.as_u64() <= highest_assigned,
                    "view of {} holds {}, an id the system never assigned",
                    u,
                    v
                );
            }
        }
    }
    Ok(())
}

/// Runs one engine for a fixed number of immediate-delivery rounds and
/// reconciles the final edge count against the engine's stats ledger:
/// `edges = initial − 2·(sent − duplications) + 2·stored`, alongside the
/// send ledger `actions = self_loops + sent` and
/// `sent = lost + dead_letters + stored + deleted` (no churn here, so
/// nothing is in flight after a round and dead letters cannot arise).
fn id_ledger_holds<E: Engine>(mut sim: E, rounds: usize) -> Result<(), TestCaseError> {
    let initial = sim.graph().edge_count() as i64;
    sim.run_rounds(rounds);
    let s = sim.stats();
    // Steps accounting: with no churn, every live node is scheduled
    // once per round and either acts or is capacity-skipped.
    prop_assert_eq!(s.actions + s.skipped, (rounds * ENGINE_N) as u64);
    prop_assert_eq!(s.actions, s.self_loops + s.sent);
    prop_assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
    prop_assert_eq!(s.dead_letters, 0);
    let expected = initial - 2 * (s.sent - s.duplications) as i64 + 2 * s.stored as i64;
    prop_assert_eq!(sim.graph().edge_count() as i64, expected, "edge ledger out of balance");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Observation 5.1: outdegrees stay even and inside [d_L, s] no matter
    /// how actions, losses, and injected messages interleave.
    #[test]
    fn observation_5_1_holds_under_arbitrary_schedules(
        events in vec(arb_event(), 1..400),
        seed in any::<u64>(),
    ) {
        let n = 8usize;
        let config = SfConfig::new(12, 4).expect("legal");
        let mut nodes = build_system(n, config, 6);
        let mut rng = StdRng::seed_from_u64(seed);

        for event in events {
            match event {
                Event::Act { initiator, lost } => {
                    let i = initiator as usize % n;
                    let outcome = nodes[i].initiate(&mut rng);
                    if let InitiateOutcome::Sent { to, message, .. } = outcome {
                        if !lost {
                            let j = to.index() % n;
                            nodes[j].receive(message, &mut rng);
                        }
                    }
                }
                Event::Inject { to, sender, payload } => {
                    let j = to as usize % n;
                    let msg = Message::new(
                        NodeId::new(u64::from(sender) % n as u64),
                        NodeId::new(u64::from(payload) % n as u64),
                        false,
                    );
                    nodes[j].receive(msg, &mut rng);
                }
            }
            for node in &nodes {
                let d = node.out_degree();
                prop_assert_eq!(d % 2, 0, "odd outdegree at {}", node.id());
                prop_assert!(d >= config.lower_threshold());
                prop_assert!(d <= config.view_size());
            }
        }
    }

    /// Lemma 6.2: with no loss and d_L = 0, every node's sum degree
    /// d(u) + 2·d_in(u) is invariant under any action schedule.
    #[test]
    fn lemma_6_2_sum_degree_invariant(
        initiators in vec(any::<u8>(), 1..500),
        seed in any::<u64>(),
    ) {
        let n = 8usize;
        let config = SfConfig::lossless(12).expect("legal");
        let mut nodes = build_system(n, config, 4);
        let before = MembershipGraph::from_nodes(&nodes).sum_degrees();
        let mut rng = StdRng::seed_from_u64(seed);

        for initiator in initiators {
            let i = initiator as usize % n;
            let outcome = nodes[i].initiate(&mut rng);
            if let InitiateOutcome::Sent { to, message, .. } = outcome {
                let j = to.index() % n;
                nodes[j].receive(message, &mut rng);
            }
        }
        let after = MembershipGraph::from_nodes(&nodes).sum_degrees();
        prop_assert_eq!(before, after);
    }

    /// Total edge conservation identity: every non-self-loop action without
    /// loss moves exactly zero or ±2 edges; the ledger
    /// `edges = initial − 2·(non-dup sends) + 2·(stores)` always balances.
    #[test]
    fn edge_ledger_balances(
        initiators in vec(any::<u8>(), 1..300),
        losses in vec(any::<bool>(), 300),
        seed in any::<u64>(),
    ) {
        let n = 6usize;
        let config = SfConfig::new(10, 2).expect("legal");
        let mut nodes = build_system(n, config, 4);
        let initial_edges = MembershipGraph::from_nodes(&nodes).edge_count() as i64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut removed = 0i64;
        let mut added = 0i64;

        for (k, initiator) in initiators.iter().enumerate() {
            let i = *initiator as usize % n;
            let outcome = nodes[i].initiate(&mut rng);
            if let InitiateOutcome::Sent { to, message, duplicated, .. } = outcome {
                if !duplicated {
                    removed += 2;
                }
                if !losses[k % losses.len()] {
                    let j = to.index() % n;
                    if !nodes[j].receive(message, &mut rng).is_deleted() {
                        added += 2;
                    }
                }
            }
        }
        let final_edges = MembershipGraph::from_nodes(&nodes).edge_count() as i64;
        prop_assert_eq!(final_edges, initial_edges - removed + added);
    }

    /// Obs. 5.1 at the engine level: outdegrees stay even and in
    /// `[d_L, s]`, and views only ever hold ids the system assigned,
    /// through arbitrary schedules of rounds, loss rates, and churn on all
    /// three engines.
    #[test]
    fn engines_preserve_observation_5_1_under_random_schedules(
        ops in vec(arb_engine_op(), 1..10),
        rate_milli in 0..500u32,
        seed in any::<u64>(),
    ) {
        let config = engine_config();
        let loss = UniformLoss::new(f64::from(rate_milli) / 1000.0).expect("valid rate");
        let nodes = build_system(ENGINE_N, config, 6);
        obs_5_1_schedule(Simulation::new(nodes.clone(), loss, seed), &ops, config)?;
        obs_5_1_schedule(FlatSimulation::new(nodes.clone(), loss, seed), &ops, config)?;
        obs_5_1_schedule(ParSimulation::new(nodes, loss, seed, 2), &ops, config)?;
    }

    /// Id conservation at the engine level: over any schedule of rounds at
    /// any loss rate (including zero — the lossless conservation case),
    /// every id copy is accounted for. Each non-duplicating send removes
    /// exactly two view entries at the initiator, each stored delivery
    /// adds exactly two at the receiver, and nothing else moves an edge —
    /// so the edge count reconciles against the engine's own stats ledger,
    /// and the send ledger itself balances, on all three engines.
    #[test]
    fn engines_conserve_ids_against_their_ledgers(
        rounds in 1..12usize,
        rate_milli in 0..500u32,
        seed in any::<u64>(),
    ) {
        let config = engine_config();
        let loss = UniformLoss::new(f64::from(rate_milli) / 1000.0).expect("valid rate");
        let nodes = build_system(ENGINE_N, config, 6);
        id_ledger_holds(Simulation::new(nodes.clone(), loss, seed), rounds)?;
        id_ledger_holds(FlatSimulation::new(nodes.clone(), loss, seed), rounds)?;
        id_ledger_holds(ParSimulation::new(nodes, loss, seed, 2), rounds)?;
    }

    /// Obs. 5.1 under the scenario fault models: random multi-phase
    /// schedules mixing partition-then-heal, capacity classes, targeted
    /// victims, per-link correlated loss, and uniform phases — still
    /// interleaved with churn ops — must keep outdegrees even and inside
    /// `[d_L, s]` with no forged ids, on all three engines. Correlated
    /// faults shape *which* messages drop, never the per-node view
    /// algebra, so the safety invariants are fault-model-independent.
    #[test]
    fn engines_preserve_observation_5_1_under_scenario_faults(
        phases in vec((any::<u8>(), arb_fault_kind()), 1..4),
        ops in vec(arb_engine_op(), 1..8),
        seed in any::<u64>(),
    ) {
        let config = engine_config();
        let fault = build_schedule(&phases);
        let nodes = build_system(ENGINE_N, config, 6);
        obs_5_1_schedule(Simulation::new(nodes.clone(), fault.clone(), seed), &ops, config)?;
        obs_5_1_schedule(FlatSimulation::new(nodes.clone(), fault.clone(), seed), &ops, config)?;
        obs_5_1_schedule(ParSimulation::new(nodes, fault, seed, 2), &ops, config)?;
    }

    /// Id conservation under the scenario fault models. Capacity gating
    /// skips whole steps rather than dropping messages, so the ledger
    /// gains a term: `actions + skipped` must equal the total scheduled
    /// steps, and the send/edge ledgers must still balance exactly — on
    /// all three engines, under every fault family.
    #[test]
    fn engines_conserve_ids_under_scenario_faults(
        phases in vec((any::<u8>(), arb_fault_kind()), 1..4),
        rounds in 1..12usize,
        seed in any::<u64>(),
    ) {
        let config = engine_config();
        let fault = build_schedule(&phases);
        let nodes = build_system(ENGINE_N, config, 6);
        id_ledger_holds(Simulation::new(nodes.clone(), fault.clone(), seed), rounds)?;
        id_ledger_holds(FlatSimulation::new(nodes.clone(), fault.clone(), seed), rounds)?;
        id_ledger_holds(ParSimulation::new(nodes, fault, seed, 2), rounds)?;
    }

    /// The dependence tag algebra: a view never reports more dependent
    /// entries than total entries, whatever happened to it.
    #[test]
    fn dependence_report_is_well_formed(
        initiators in vec(any::<u8>(), 1..200),
        seed in any::<u64>(),
    ) {
        let n = 6usize;
        let config = SfConfig::new(10, 4).expect("legal");
        let mut nodes = build_system(n, config, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        for initiator in initiators {
            let i = initiator as usize % n;
            if let InitiateOutcome::Sent { to, message, .. } = nodes[i].initiate(&mut rng) {
                let j = to.index() % n;
                nodes[j].receive(message, &mut rng);
            }
        }
        let report = sandf::DependenceReport::measure(&nodes);
        prop_assert!(report.dependent_entries <= report.total_entries);
        prop_assert!(report.self_edges <= report.dependent_entries);
        let alpha = report.independent_fraction();
        prop_assert!((0.0..=1.0).contains(&alpha));
    }
}
