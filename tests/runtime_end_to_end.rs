//! End-to-end: the threaded runtime over the lossy in-memory transport must
//! exhibit the same steady-state behavior the simulator and the analysis
//! predict.

use std::time::Duration;

use sandf::obs::MetricsRegistry;
use sandf::runtime::{Cluster, ClusterConfig};
use sandf::{DegreeStats, MembershipGraph, SfConfig};

fn launch(loss: f64, seed: u64) -> Cluster {
    Cluster::launch(ClusterConfig {
        n: 24,
        protocol: SfConfig::new(12, 4).expect("legal"),
        loss,
        tick: Duration::from_millis(1),
        seed,
        initial_out_degree: 6,
    })
}

#[test]
fn cluster_converges_and_respects_invariants() {
    let cluster = launch(0.02, 1);
    cluster.run_for(Duration::from_millis(600));
    let nodes = cluster.shutdown();
    let graph = MembershipGraph::from_nodes(&nodes);
    assert!(graph.is_weakly_connected());
    for node in &nodes {
        assert_eq!(node.out_degree() % 2, 0, "Observation 5.1 violated");
        assert!(node.out_degree() >= 4 && node.out_degree() <= 12);
    }
    let actions: u64 = nodes.iter().map(|n| n.stats().initiated).sum();
    assert!(actions > 24 * 100, "cluster barely ran: {actions}");
}

#[test]
fn duplication_rate_tracks_loss_in_real_time() {
    // Lemma 6.7 on a real concurrent substrate: dup ∈ [ℓ, ℓ + δ] up to
    // concurrency noise.
    let cluster = launch(0.1, 2);
    cluster.run_for(Duration::from_millis(1500));
    let nodes = cluster.shutdown();
    let sent: u64 = nodes.iter().map(|n| n.stats().sent).sum();
    let dups: u64 = nodes.iter().map(|n| n.stats().duplications).sum();
    let dup_rate = dups as f64 / sent as f64;
    assert!((0.05..=0.25).contains(&dup_rate), "duplication rate {dup_rate} far from ℓ=0.1");
}

#[test]
fn lossless_cluster_rarely_duplicates() {
    let cluster = launch(0.0, 3);
    cluster.run_for(Duration::from_millis(800));
    let nodes = cluster.shutdown();
    let sent: u64 = nodes.iter().map(|n| n.stats().sent).sum();
    let dups: u64 = nodes.iter().map(|n| n.stats().duplications).sum();
    let dup_rate = dups as f64 / sent.max(1) as f64;
    // δ for this small configuration is larger than the paper's 1%, but
    // duplications must still be the exception.
    assert!(dup_rate < 0.2, "duplication rate without loss: {dup_rate}");
}

#[test]
fn observed_cluster_counters_aggregate_the_per_node_stats() {
    // The sandf-obs tap on the runtime must be exact accounting, not
    // sampling: after shutdown, each cluster-wide `runtime.node.*` counter
    // equals the same field summed over every node's own NodeStats, and
    // the network hub's `net.memory.sent` equals the nodes' total sends.
    let registry = MetricsRegistry::new();
    let cluster = Cluster::launch_observed(
        ClusterConfig {
            n: 24,
            protocol: SfConfig::new(12, 4).expect("legal"),
            loss: 0.05,
            tick: Duration::from_millis(1),
            seed: 5,
            initial_out_degree: 6,
        },
        &registry,
    );
    cluster.run_for(Duration::from_millis(600));
    let nodes = cluster.shutdown();

    let counter = |name: &str| registry.counter_value(name).expect("registered");
    let sum = |field: fn(&sandf::NodeStats) -> u64| -> u64 {
        nodes.iter().map(|n| field(n.stats())).sum()
    };
    assert_eq!(counter("runtime.node.initiated"), sum(|s| s.initiated));
    assert_eq!(counter("runtime.node.self_loops"), sum(|s| s.self_loops));
    assert_eq!(counter("runtime.node.sent"), sum(|s| s.sent));
    assert_eq!(counter("runtime.node.duplications"), sum(|s| s.duplications));
    assert_eq!(counter("runtime.node.stored"), sum(|s| s.stored));
    assert_eq!(counter("runtime.node.deletions"), sum(|s| s.deletions));
    assert_eq!(counter("net.memory.sent"), sum(|s| s.sent), "hub sees every send");
    assert!(
        counter("net.memory.delivered") + counter("net.memory.dropped")
            <= counter("net.memory.sent"),
        "hub ledger must not overcount"
    );
}

#[test]
fn load_stays_balanced_under_loss() {
    let cluster = launch(0.05, 4);
    cluster.run_for(Duration::from_millis(1200));
    let graph = cluster.snapshot_graph();
    let stats = DegreeStats::from_samples(&graph.in_degrees());
    assert!(stats.std_dev() < stats.mean, "indegree imbalance on the runtime: {stats:?}");
    let _ = cluster.shutdown();
}
