//! End-to-end: the threaded runtime over the lossy in-memory transport must
//! exhibit the same steady-state behavior the simulator and the analysis
//! predict.

use std::time::Duration;

use sandf::runtime::{Cluster, ClusterConfig};
use sandf::{DegreeStats, MembershipGraph, SfConfig};

fn launch(loss: f64, seed: u64) -> Cluster {
    Cluster::launch(ClusterConfig {
        n: 24,
        protocol: SfConfig::new(12, 4).expect("legal"),
        loss,
        tick: Duration::from_millis(1),
        seed,
        initial_out_degree: 6,
    })
}

#[test]
fn cluster_converges_and_respects_invariants() {
    let cluster = launch(0.02, 1);
    cluster.run_for(Duration::from_millis(600));
    let nodes = cluster.shutdown();
    let graph = MembershipGraph::from_nodes(&nodes);
    assert!(graph.is_weakly_connected());
    for node in &nodes {
        assert_eq!(node.out_degree() % 2, 0, "Observation 5.1 violated");
        assert!(node.out_degree() >= 4 && node.out_degree() <= 12);
    }
    let actions: u64 = nodes.iter().map(|n| n.stats().initiated).sum();
    assert!(actions > 24 * 100, "cluster barely ran: {actions}");
}

#[test]
fn duplication_rate_tracks_loss_in_real_time() {
    // Lemma 6.7 on a real concurrent substrate: dup ∈ [ℓ, ℓ + δ] up to
    // concurrency noise.
    let cluster = launch(0.1, 2);
    cluster.run_for(Duration::from_millis(1500));
    let nodes = cluster.shutdown();
    let sent: u64 = nodes.iter().map(|n| n.stats().sent).sum();
    let dups: u64 = nodes.iter().map(|n| n.stats().duplications).sum();
    let dup_rate = dups as f64 / sent as f64;
    assert!(
        (0.05..=0.25).contains(&dup_rate),
        "duplication rate {dup_rate} far from ℓ=0.1"
    );
}

#[test]
fn lossless_cluster_rarely_duplicates() {
    let cluster = launch(0.0, 3);
    cluster.run_for(Duration::from_millis(800));
    let nodes = cluster.shutdown();
    let sent: u64 = nodes.iter().map(|n| n.stats().sent).sum();
    let dups: u64 = nodes.iter().map(|n| n.stats().duplications).sum();
    let dup_rate = dups as f64 / sent.max(1) as f64;
    // δ for this small configuration is larger than the paper's 1%, but
    // duplications must still be the exception.
    assert!(dup_rate < 0.2, "duplication rate without loss: {dup_rate}");
}

#[test]
fn load_stays_balanced_under_loss() {
    let cluster = launch(0.05, 4);
    cluster.run_for(Duration::from_millis(1200));
    let graph = cluster.snapshot_graph();
    let stats = DegreeStats::from_samples(&graph.in_degrees());
    assert!(
        stats.std_dev() < stats.mean,
        "indegree imbalance on the runtime: {stats:?}"
    );
    let _ = cluster.shutdown();
}
