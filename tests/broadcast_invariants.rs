//! Property-based tests of the rumor layer's structural invariants under
//! random fault, churn, and rumor-channel schedules, on all three engines
//! (`Simulation`, `FlatSimulation`, `ParSimulation`):
//!
//! * **Monotonicity** — once a node holds the rumor it never un-learns
//!   it, no matter how views churn underneath.
//! * **Provenance** — every infection is witnessed by a trace edge that
//!   existed in *that round's* live views: a push edge lies in the
//!   sender's view, a pull edge in the requester's view. Nobody learns
//!   the rumor out of thin air.
//! * **Ledger** — after every step the layer's live count matches the
//!   engine's, and informed + uninformed partitions the live set.

use std::collections::{HashMap, HashSet};

use proptest::collection::vec;
use proptest::prelude::*;
use sandf::{
    BroadcastConfig, BroadcastLayer, Engine, FlatSimulation, NodeId, ParSimulation, RumorChannel,
    SfConfig, SfNode, Simulation, UniformLoss,
};

/// System size for the engine-level schedules.
const N: usize = 16;

fn build_system(n: usize, config: SfConfig, d0: usize) -> Vec<SfNode> {
    (0..n as u64)
        .map(|i| {
            let bootstrap: Vec<NodeId> =
                (1..=d0 as u64).map(|k| NodeId::new((i + k) % n as u64)).collect();
            SfNode::with_view(NodeId::new(i), config, &bootstrap).expect("legal bootstrap")
        })
        .collect()
}

/// One engine-level scheduled operation.
#[derive(Clone, Debug)]
enum Op {
    /// Run `1 + (r % 3)` membership+broadcast rounds.
    Rounds(u8),
    /// Remove a live node (skipped when the system is nearly empty).
    Leave(u8),
    /// Join a new node via a live sponsor.
    Join(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Rounds),
        any::<u8>().prop_map(Op::Leave),
        any::<u8>().prop_map(Op::Join),
    ]
}

/// One randomly drawn rumor channel, rates in milli-units.
#[derive(Clone, Debug)]
enum ChannelKind {
    Lossless,
    Uniform { rate_milli: u16 },
    Bursty { to_bad_milli: u16, to_good_milli: u16, good_milli: u16, bad_milli: u16 },
    Partition { regions: u64, sever_milli: u16, base_milli: u16 },
    Victims { victims: Vec<u8>, victim_milli: u16, base_milli: u16 },
}

fn milli(m: u16) -> f64 {
    f64::from(m % 1000) / 1000.0
}

fn arb_channel() -> impl Strategy<Value = ChannelKind> {
    prop_oneof![
        Just(ChannelKind::Lossless),
        any::<u16>().prop_map(|rate_milli| ChannelKind::Uniform { rate_milli }),
        (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()).prop_map(
            |(to_bad_milli, to_good_milli, good_milli, bad_milli)| ChannelKind::Bursty {
                to_bad_milli,
                to_good_milli,
                good_milli,
                bad_milli
            }
        ),
        (2..5u64, any::<u16>(), any::<u16>()).prop_map(|(regions, sever_milli, base_milli)| {
            ChannelKind::Partition { regions, sever_milli, base_milli }
        }),
        (vec(any::<u8>(), 1..4), any::<u16>(), any::<u16>()).prop_map(
            |(victims, victim_milli, base_milli)| ChannelKind::Victims {
                victims,
                victim_milli,
                base_milli
            }
        ),
    ]
}

fn compile_channel(kind: &ChannelKind) -> RumorChannel {
    match kind {
        ChannelKind::Lossless => RumorChannel::Lossless,
        ChannelKind::Uniform { rate_milli } => RumorChannel::Uniform { rate: milli(*rate_milli) },
        ChannelKind::Bursty { to_bad_milli, to_good_milli, good_milli, bad_milli } => {
            RumorChannel::Bursty {
                to_bad: milli(*to_bad_milli),
                to_good: milli(*to_good_milli),
                loss_good: milli(*good_milli),
                loss_bad: milli(*bad_milli),
            }
        }
        ChannelKind::Partition { regions, sever_milli, base_milli } => RumorChannel::Partition {
            regions: *regions,
            sever: milli(*sever_milli),
            base: milli(*base_milli),
        },
        ChannelKind::Victims { victims, victim_milli, base_milli } => RumorChannel::Victims {
            victim_rate: milli(*victim_milli),
            base: milli(*base_milli),
            victims: victims.iter().map(|&v| NodeId::new(u64::from(v) % N as u64)).collect(),
        },
    }
}

/// One membership round followed by one broadcast step, with the three
/// invariants checked against a view snapshot taken at the exact state
/// the step observes.
fn step_and_check<E: Engine>(
    sim: &mut E,
    layer: &mut BroadcastLayer,
    informed_ever: &mut HashSet<NodeId>,
) -> Result<(), TestCaseError> {
    sim.round();

    // Snapshot the live views the broadcast step is about to gossip over.
    let mut views: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    sim.for_each_live_view(&mut |id, view| {
        views.insert(id, view.to_vec());
    });
    let traced = layer.trace().len();
    layer.step(sim);

    // Provenance: each fresh infection rides an edge of this round's
    // views — the sender's view for a push, the requester's for a pull.
    let round = layer.rounds();
    for edge in &layer.trace()[traced..] {
        prop_assert_eq!(edge.round, round, "trace edge stamped with a foreign round");
        let push_ok = views.get(&edge.from).is_some_and(|v| v.contains(&edge.to));
        let pull_ok = views.get(&edge.to).is_some_and(|v| v.contains(&edge.from));
        prop_assert!(
            push_ok || pull_ok,
            "{} infected {} without a view edge in round {}",
            edge.from,
            edge.to,
            round
        );
    }

    // Monotonicity: nobody un-learns the rumor.
    for &id in informed_ever.iter() {
        prop_assert!(layer.is_informed(id), "{} forgot the rumor", id);
    }

    // Ledger: the layer's live count matches the engine's, and
    // informed + uninformed partitions the live set exactly.
    let live = sim.live_ids();
    prop_assert_eq!(layer.live_seen(), live.len());
    let informed = live.iter().filter(|&&id| layer.is_informed(id)).count();
    let uninformed = live.iter().filter(|&&id| !layer.is_informed(id)).count();
    prop_assert_eq!(informed, layer.informed_live());
    prop_assert_eq!(informed + uninformed, live.len());

    for &id in &live {
        if layer.is_informed(id) {
            informed_ever.insert(id);
        }
    }
    Ok(())
}

/// Drives one engine through a random schedule of rounds, leaves, and
/// joins with the rumor layer riding on top.
fn broadcast_schedule<E: Engine>(
    mut sim: E,
    ops: &[Op],
    channel: RumorChannel,
    config: BroadcastConfig,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut layer = BroadcastLayer::with_channel(seed, config, channel);
    layer.enable_trace();
    let origin = sim.live_ids().into_iter().min().expect("non-empty system");
    layer.seed_rumor_at(origin);
    let mut informed_ever: HashSet<NodeId> = [origin].into();

    let mut live: Vec<NodeId> = sim.live_ids();
    for op in ops {
        match *op {
            Op::Rounds(r) => {
                for _ in 0..(1 + usize::from(r % 3)) {
                    step_and_check(&mut sim, &mut layer, &mut informed_ever)?;
                }
            }
            Op::Leave(x) => {
                if live.len() > 4 {
                    let id = live[usize::from(x) % live.len()];
                    prop_assert!(sim.leave(id), "{} should have been live", id);
                    live.retain(|&v| v != id);
                }
            }
            Op::Join(x) => {
                let sponsor = live[usize::from(x) % live.len()];
                if let Ok(joiner) = sim.join_via(sponsor) {
                    live.push(joiner);
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Monotonicity, provenance, and the live ledger hold through
    /// arbitrary schedules of rounds, churn, membership loss, and rumor
    /// channels, on all three engines.
    #[test]
    fn broadcast_invariants_hold_on_all_engines(
        ops in vec(arb_op(), 1..12),
        channel in arb_channel(),
        fanout in 1..3usize,
        pull in any::<bool>(),
        rate_milli in 0..500u32,
        seed in any::<u64>(),
    ) {
        let sf = SfConfig::new(12, 4).expect("legal config");
        let loss = UniformLoss::new(f64::from(rate_milli) / 1000.0).expect("valid rate");
        let nodes = build_system(N, sf, 6);
        let config = if pull {
            BroadcastConfig::push_pull(fanout, u8::MAX)
        } else {
            BroadcastConfig::push(fanout, u8::MAX)
        };
        let rumor = compile_channel(&channel);
        broadcast_schedule(
            Simulation::new(nodes.clone(), loss, seed),
            &ops,
            rumor.clone(),
            config,
            seed,
        )?;
        broadcast_schedule(
            FlatSimulation::new(nodes.clone(), loss, seed),
            &ops,
            rumor.clone(),
            config,
            seed,
        )?;
        broadcast_schedule(ParSimulation::new(nodes, loss, seed, 2), &ops, rumor, config, seed)?;
    }
}
