//! Lemmas 6.6 and 6.7: in the steady state the duplication probability
//! equals the loss rate plus the deletion probability, and lies within
//! `[ℓ, ℓ + δ]`.

use sandf::sim::experiment::{steady_state_event_rates, ExperimentParams};
use sandf::SfConfig;

fn rates(loss: f64, seed: u64) -> sandf::sim::experiment::EventRates {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    steady_state_event_rates(&ExperimentParams { n: 500, config, loss, burn_in: 400, seed }, 400)
}

#[test]
fn lemma_6_6_dup_equals_loss_plus_del() {
    for (k, loss) in [0.0, 0.01, 0.05, 0.1].into_iter().enumerate() {
        let r = rates(loss, 40 + k as u64);
        let gap = (r.duplication - (r.loss + r.deletion)).abs();
        assert!(
            gap < 0.008,
            "ℓ={loss}: dup {} vs ℓ+del {} (gap {gap})",
            r.duplication,
            r.loss + r.deletion
        );
    }
}

#[test]
fn lemma_6_7_dup_within_the_band() {
    // δ = 0.01 is the design budget of the (18, 40) configuration.
    let delta = 0.01;
    for (k, loss) in [0.01, 0.05, 0.1].into_iter().enumerate() {
        let r = rates(loss, 50 + k as u64);
        assert!(r.duplication >= loss - 0.005, "ℓ={loss}: dup {} below ℓ", r.duplication);
        assert!(r.duplication <= loss + delta + 0.005, "ℓ={loss}: dup {} above ℓ+δ", r.duplication);
    }
}

#[test]
fn observation_6_5_deletions_vanish_with_loss() {
    let low = rates(0.0, 60);
    let high = rates(0.1, 61);
    assert!(
        high.deletion < low.deletion,
        "deletions should shrink with loss: {} -> {}",
        low.deletion,
        high.deletion
    );
    assert!(high.deletion < 0.002, "deletions at 10% loss: {}", high.deletion);
}

#[test]
fn edge_population_is_stationary() {
    // The corollary of Lemma 6.6: the total edge count neither drains nor
    // blows up in the steady state.
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let nodes = sandf::sim::topology::circulant(400, config, 30);
    let mut sim = sandf::Simulation::new(nodes, sandf::UniformLoss::new(0.05).expect("valid"), 62);
    sim.run_rounds(400);
    let reference = sim.graph().edge_count() as f64;
    for _ in 0..5 {
        sim.run_rounds(100);
        let now = sim.graph().edge_count() as f64;
        assert!(
            (now - reference).abs() / reference < 0.05,
            "edge population drifted: {reference} -> {now}"
        );
    }
}
