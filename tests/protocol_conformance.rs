//! Conformance suite for the unified engine/protocol matrix: every
//! protocol in the zoo (the three Section 3.1 baselines and the three
//! Section 5 variants) runs on both fast engines (`FlatSimulation`,
//! `ParSimulation`) through [`ProtocolBehavior`], and each (engine,
//! protocol) pair is checked for
//!
//! 1. **degree bounds** — outdegrees never exceed the slot capacity `s`,
//!    and for the S&F family (variants) the full Observation 5.1 band
//!    (even, inside `[d_L, s]`) holds;
//! 2. **id provenance** — views only ever hold ids the system assigned
//!    (a forged id would expose e.g. a sentinel leak in the arena slot
//!    encoding);
//! 3. **statistical agreement** — for shuffle and push-pull, the arena
//!    re-expressions agree with the retained `Vec`-backed
//!    [`BaselineHarness`] reference within overlapping 95% confidence
//!    bands over seed replicates;
//! 4. **Section 3.1 drainage ordering** at n = 10⁴ — the shuffle
//!    population drains under loss while S&F holds its band.

use proptest::collection::vec;
use proptest::prelude::*;
use sandf::baselines::behaviors::{PushOnlyBehavior, PushPullBehavior, ShuffleBehavior};
use sandf::baselines::{BaselineHarness, PushPullNode, ShuffleNode};
use sandf::variants::behaviors::{BatchedBehavior, ReplaceBehavior, UndeleteBehavior};
use sandf::{
    Engine, FlatSimulation, NodeId, ParSimulation, ProtocolBehavior, SfConfig, UniformLoss,
};

/// Ring bootstrap: node `i`'s view is the next `k` ids around the ring.
fn ring_views(n: usize, k: usize) -> Vec<(NodeId, Vec<NodeId>)> {
    (0..n as u64)
        .map(|i| {
            let view: Vec<NodeId> =
                (1..=k as u64).map(|d| NodeId::new((i + d) % n as u64)).collect();
            (NodeId::new(i), view)
        })
        .collect()
}

fn loss(rate: f64) -> UniformLoss {
    UniformLoss::new(rate).expect("valid rate")
}

/// Degree-bound + id-provenance schedule for one (engine, protocol)
/// pair. `band` additionally enforces the Observation 5.1 band (even
/// degrees in `[d_L, s]`) — on for the S&F variants, off for the
/// baselines (which obey only the capacity bound).
fn bounds_hold<E: Engine>(
    mut sim: E,
    n: usize,
    config: SfConfig,
    leaves: &[u8],
    rounds: usize,
    band: bool,
) -> Result<(), TestCaseError> {
    let mut live: Vec<NodeId> = (0..n as u64).map(NodeId::new).collect();
    for &x in leaves {
        sim.run_rounds(rounds);
        if live.len() > n / 2 {
            let id = live[usize::from(x) % live.len()];
            prop_assert!(sim.leave(id), "{} should have been live", id);
            live.retain(|&v| v != id);
        }
        let graph = sim.graph();
        for d in graph.out_degrees() {
            prop_assert!(d <= config.view_size(), "outdegree {} exceeds s", d);
            if band {
                prop_assert_eq!(d % 2, 0, "odd outdegree");
                prop_assert!(d >= config.lower_threshold(), "outdegree {} below d_L", d);
            }
        }
        for &u in graph.ids() {
            for v in graph.out_neighbors(u).expect("id comes from the graph") {
                prop_assert!(
                    v.as_u64() < n as u64,
                    "view of {} holds {}, an id the system never assigned",
                    u,
                    v
                );
            }
        }
    }
    Ok(())
}

const N: usize = 24;

fn zoo_config() -> SfConfig {
    SfConfig::new(8, 2).expect("legal config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Baselines × {flat, par}: capacity bound + provenance under random
    /// loss rates, churn (leaves), and round counts.
    #[test]
    fn baselines_respect_bounds_on_both_engines(
        leaves in vec(any::<u8>(), 1..5),
        rate_milli in 0..300u32,
        seed in any::<u64>(),
    ) {
        let config = zoo_config();
        let l = loss(f64::from(rate_milli) / 1000.0);
        let views = ring_views(N, 4);
        bounds_hold(
            FlatSimulation::from_views(PushOnlyBehavior, config, views.clone(), l, seed),
            N, config, &leaves, 2, false,
        )?;
        bounds_hold(
            ParSimulation::from_views(PushOnlyBehavior, config, views.clone(), l, seed, 2),
            N, config, &leaves, 2, false,
        )?;
        bounds_hold(
            FlatSimulation::from_views(PushPullBehavior::new(3), config, views.clone(), l, seed),
            N, config, &leaves, 2, false,
        )?;
        bounds_hold(
            ParSimulation::from_views(PushPullBehavior::new(3), config, views.clone(), l, seed, 2),
            N, config, &leaves, 2, false,
        )?;
        bounds_hold(
            FlatSimulation::from_views(ShuffleBehavior::new(3), config, views.clone(), l, seed),
            N, config, &leaves, 2, false,
        )?;
        bounds_hold(
            ParSimulation::from_views(ShuffleBehavior::new(3), config, views, l, seed, 2),
            N, config, &leaves, 2, false,
        )?;
    }

    /// Variants × {flat, par}: the full Observation 5.1 band (even
    /// degrees in `[d_L, s]`) plus provenance. Replace and undelete keep
    /// the vanilla two-slot draws; batched clears `b + 1` at a time with
    /// odd `b`, preserving parity.
    #[test]
    fn variants_respect_the_band_on_both_engines(
        leaves in vec(any::<u8>(), 1..5),
        rate_milli in 0..300u32,
        seed in any::<u64>(),
    ) {
        let config = zoo_config();
        let l = loss(f64::from(rate_milli) / 1000.0);
        let views = ring_views(N, 4);
        bounds_hold(
            FlatSimulation::from_views(ReplaceBehavior, config, views.clone(), l, seed),
            N, config, &leaves, 2, true,
        )?;
        bounds_hold(
            ParSimulation::from_views(ReplaceBehavior, config, views.clone(), l, seed, 2),
            N, config, &leaves, 2, true,
        )?;
        bounds_hold(
            FlatSimulation::from_views(UndeleteBehavior, config, views.clone(), l, seed),
            N, config, &leaves, 2, true,
        )?;
        bounds_hold(
            ParSimulation::from_views(UndeleteBehavior, config, views.clone(), l, seed, 2),
            N, config, &leaves, 2, true,
        )?;
        bounds_hold(
            FlatSimulation::from_views(BatchedBehavior::new(3), config, views.clone(), l, seed),
            N, config, &leaves, 2, true,
        )?;
        bounds_hold(
            ParSimulation::from_views(BatchedBehavior::new(3), config, views, l, seed, 2),
            N, config, &leaves, 2, true,
        )?;
    }
}

// ---------------------------------------------------------------------
// Statistical agreement: harness reference vs. flat vs. par.
// ---------------------------------------------------------------------

/// Mean and 95% confidence half-width over replicates.
fn mean_ci(xs: &[f64]) -> (f64, f64) {
    let k = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / k;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (k - 1.0);
    (mean, 1.96 * (var / k).sqrt())
}

fn assert_bands_overlap(label: &str, a: (f64, f64), b: (f64, f64), allowance: f64) {
    assert!(
        (a.0 - b.0).abs() <= a.1 + b.1 + allowance,
        "{label}: ci95 bands disjoint — {:.1}±{:.1} vs {:.1}±{:.1}",
        a.0,
        a.1,
        b.0,
        b.1
    );
}

const AGREE_N: usize = 400;
const AGREE_BOOT: usize = 6;
const AGREE_LOSS: f64 = 0.08;
const AGREE_SEEDS: u64 = 12;

/// Agreement runs use a roomy capacity (s = 16 for views of 6) and low
/// per-exchange mobility, so the statistic tracks the *protocol's* id
/// dynamics rather than scheduling artifacts. Par's phase-split round
/// (all sends, then all deliveries, then reply waves) is a documented
/// distinct statistical mode (see `par_statistics.rs`): under heavy slot
/// pressure or high per-round id mobility, its within-round ordering
/// differences dominate the comparison without any protocol drift.
fn agree_config() -> SfConfig {
    SfConfig::new(16, 2).expect("legal config")
}

/// Pinned phase-split bias allowance for par on the push-pull growth
/// statistic. Flat's within-round delivery lets freshly pushed ids
/// attract more same-round traffic, skewing arrivals toward full views
/// (more capacity overwrites, fewer net inserts); par's phase split
/// spreads arrivals evenly. Measured bias ≈ 71 ids at these parameters;
/// pinned with headroom but tight enough that a real drift (e.g. the
/// ≈ 390-id gap a reply-size-3 run exposes) still fails.
const PAR_PUSH_PULL_ALLOWANCE: f64 = 150.0;

fn flat_total_ids<B: ProtocolBehavior>(behavior: B, rounds: usize, seed: u64) -> f64 {
    let mut sim = FlatSimulation::from_views(
        behavior,
        agree_config(),
        ring_views(AGREE_N, AGREE_BOOT),
        loss(AGREE_LOSS),
        seed,
    );
    sim.run_rounds(rounds);
    sim.graph().edge_count() as f64
}

fn par_total_ids<B: ProtocolBehavior>(behavior: B, rounds: usize, seed: u64) -> f64 {
    let mut sim = ParSimulation::from_views(
        behavior,
        agree_config(),
        ring_views(AGREE_N, AGREE_BOOT),
        loss(AGREE_LOSS),
        seed,
        2,
    );
    sim.run_rounds(rounds);
    sim.graph().edge_count() as f64
}

/// Shuffle: the arena re-expression on both fast engines tracks the
/// `Vec`-backed reference harness (total surviving id instances after 12
/// lossy rounds, ci95 over 12 seeds) — strict three-way overlap.
#[test]
fn shuffle_agrees_with_the_reference_harness() {
    let s = agree_config().view_size();
    let rounds = 12;
    let mut harness_ids = Vec::new();
    let mut flat_ids = Vec::new();
    let mut par_ids = Vec::new();
    for seed in 0..AGREE_SEEDS {
        let nodes: Vec<ShuffleNode> = ring_views(AGREE_N, AGREE_BOOT)
            .into_iter()
            .map(|(id, view)| ShuffleNode::new(id, s, 2, &view))
            .collect();
        let mut harness = BaselineHarness::new(nodes, AGREE_LOSS, seed);
        harness.run_rounds(rounds);
        harness_ids.push(harness.metrics().total_ids as f64);
        flat_ids.push(flat_total_ids(ShuffleBehavior::new(2), rounds, seed));
        par_ids.push(par_total_ids(ShuffleBehavior::new(2), rounds, seed));
    }
    let h = mean_ci(&harness_ids);
    let f = mean_ci(&flat_ids);
    let p = mean_ci(&par_ids);
    assert_bands_overlap("shuffle harness vs flat", h, f, 0.0);
    assert_bands_overlap("shuffle harness vs par", h, p, 0.0);
    assert_bands_overlap("shuffle flat vs par", f, p, 0.0);
    // Sanity: the comparison is meaningful only if loss actually drained
    // ids (otherwise all three trivially sit at the initial count).
    let initial = (AGREE_N * AGREE_BOOT) as f64;
    assert!(h.0 < initial * 0.95, "no drainage — the agreement check is vacuous");
}

/// Push-pull: same three-way comparison on the growth statistic (it only
/// copies ids, so the population grows toward capacity). Harness vs flat
/// must overlap strictly; par additionally gets the pinned phase-split
/// allowance.
#[test]
fn push_pull_agrees_with_the_reference_harness() {
    let s = agree_config().view_size();
    let rounds = 4;
    let mut harness_ids = Vec::new();
    let mut flat_ids = Vec::new();
    let mut par_ids = Vec::new();
    for seed in 0..AGREE_SEEDS {
        let nodes: Vec<PushPullNode> = ring_views(AGREE_N, AGREE_BOOT)
            .into_iter()
            .map(|(id, view)| PushPullNode::new(id, s, 1, &view))
            .collect();
        let mut harness = BaselineHarness::new(nodes, AGREE_LOSS, seed);
        harness.run_rounds(rounds);
        harness_ids.push(harness.metrics().total_ids as f64);
        flat_ids.push(flat_total_ids(PushPullBehavior::new(1), rounds, seed));
        par_ids.push(par_total_ids(PushPullBehavior::new(1), rounds, seed));
    }
    let h = mean_ci(&harness_ids);
    let f = mean_ci(&flat_ids);
    let p = mean_ci(&par_ids);
    assert_bands_overlap("push-pull harness vs flat", h, f, 0.0);
    assert_bands_overlap("push-pull harness vs par", h, p, PAR_PUSH_PULL_ALLOWANCE);
    assert_bands_overlap("push-pull flat vs par", f, p, PAR_PUSH_PULL_ALLOWANCE);
    let initial = (AGREE_N * AGREE_BOOT) as f64;
    assert!(h.0 > initial * 1.05, "no growth — the agreement check is vacuous");
}

/// Section 3.1 drainage ordering at n = 10⁴: under the same uniform
/// loss, the shuffle population loses a visible fraction of its ids
/// while S&F (whose compensation floor replenishes deletions) keeps its
/// total at or above the `d_L · n` band floor — and strictly above
/// shuffle. Runs on the flat engine, which makes n = 10⁴ cheap.
#[test]
fn drainage_ordering_holds_at_ten_thousand_nodes() {
    let n = 10_000;
    let config = zoo_config();
    let rate = 0.10;
    let rounds = 50;
    let initial = (n * 4) as f64;

    let mut shuffle = FlatSimulation::from_views(
        ShuffleBehavior::new(3),
        config,
        ring_views(n, 4),
        loss(rate),
        7,
    );
    shuffle.run_rounds(rounds);
    let shuffle_total = shuffle.graph().edge_count() as f64;

    let mut sf =
        FlatSimulation::from_views(sandf::SfBehavior, config, ring_views(n, 4), loss(rate), 7);
    sf.run_rounds(rounds);
    let sf_total = sf.graph().edge_count() as f64;

    assert!(
        shuffle_total < initial * 0.90,
        "shuffle should drain under {rate} loss: {shuffle_total} of {initial}"
    );
    assert!(
        sf_total >= (config.lower_threshold() * n) as f64,
        "S&F fell through the d_L band floor: {sf_total}"
    );
    assert!(
        sf_total > shuffle_total,
        "drainage ordering inverted: S&F {sf_total} ≤ shuffle {shuffle_total}"
    );
}
