//! # sandf — Send & Forget gossip-based membership under message loss
//!
//! A full Rust implementation and reproduction of Maxim Gurevich and Idit
//! Keidar, *Correctness of Gossip-Based Membership Under Message Loss*
//! (PODC 2009; SIAM J. Comput. 39(8), 2010).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] — the S&F protocol state machine ([`SfNode`], [`SfConfig`],
//!   [`LocalView`]);
//! * [`graph`] — membership-multigraph analytics (degrees, connectivity,
//!   dependence labeling, overlap);
//! * [`sim`] — the deterministic lossy-network simulator with churn and
//!   ready-made experiment runners;
//! * [`markov`] — the paper's analysis as executable numerics (degree MC,
//!   Eq. 6.1, threshold selection, dependence MC, decay and conductance
//!   bounds, exact tiny-system enumeration);
//! * [`baselines`] — push-only, shuffle, and push-pull comparison
//!   protocols behind one trait;
//! * [`net`] — lossy in-memory and UDP transports with the 17-byte wire
//!   codec;
//! * [`runtime`] — a threaded per-node runtime and cluster harness;
//! * [`daemon`] — a long-running membership service multiplexing many
//!   nodes over real UDP sockets, with a wire-level fault injector, live
//!   invariant checking, an HTTP endpoint, and a soak harness;
//! * [`obs`] — the observability subsystem (metrics registry, structured
//!   event journal, hot-path profiling spans); see the observability
//!   section of `EXPERIMENTS.md`.
//!
//! ## Quick start
//!
//! ```
//! use sandf::{SfConfig, Simulation, UniformLoss};
//! use sandf::sim::topology;
//!
//! // Parameters from the paper's running example (Section 6.3).
//! let config = SfConfig::new(40, 18)?;
//! let nodes = topology::circulant(200, config, 30);
//! let mut sim = Simulation::new(nodes, UniformLoss::new(0.01)?, 42);
//! sim.run_rounds(100);
//!
//! assert!(sim.graph().is_weakly_connected());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios and `crates/bench`
//! for the binaries regenerating every figure and table of the paper's
//! evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sandf_baselines as baselines;
pub use sandf_core as core;
pub use sandf_daemon as daemon;
pub use sandf_graph as graph;
pub use sandf_markov as markov;
pub use sandf_net as net;
pub use sandf_obs as obs;
pub use sandf_runtime as runtime;
pub use sandf_sim as sim;

pub use sandf_core::{
    ConfigError, Entry, InitiateOutcome, JoinError, LocalView, Message, NodeId, NodeStats,
    ReceiveOutcome, SfConfig, SfNode,
};
pub use sandf_graph::{DegreeStats, DependenceReport, Histogram, MembershipGraph};
pub use sandf_markov::{select_thresholds, AnalyticalDegrees, DegreeMc, DegreeMcParams};
pub use sandf_sim::{
    doerr_spread_prediction, BroadcastConfig, BroadcastLayer, BroadcastStats, Engine, FaultCtx,
    FaultModel, FlatSimulation, GilbertElliott, IdBatch, LossModel, NodeCapacity, ParSimulation,
    PerLinkLoss, PhaseFault, ProtocolBehavior, Receipt, RegionalPartition, RumorChannel,
    ScheduledFault, SfBehavior, SimStats, Simulation, SlotView, SpreadReport, TraceEdge,
    UniformLoss, VictimLoss,
};
pub use sandf_variants as variants;
