//! `sandf-cli` — run S&F simulations and analyses from the command line.
//!
//! ```text
//! sandf-cli simulate   [--n 500] [--s 40] [--dl 18] [--loss 0.01]
//!                      [--rounds 300] [--seed 42]
//! sandf-cli analyze    [--s 40] [--dl 18] [--loss 0.01]
//! sandf-cli thresholds [--dhat 30] [--delta 0.01]
//! ```
//!
//! All output is plain text; every run is deterministic for a given seed.

use std::collections::HashMap;
use std::process::ExitCode;

use sandf::sim::experiment::{steady_state_degrees, ExperimentParams};
use sandf::sim::topology;
use sandf::{
    select_thresholds, DegreeMc, DegreeMcParams, DegreeStats, SfConfig, Simulation, UniformLoss,
};

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut iter = args.iter();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected a --flag, found '{key}'"));
            };
            let value = iter.next().ok_or_else(|| format!("flag --{name} is missing a value"))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Self(map))
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.0.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("invalid value '{raw}' for --{name}")),
        }
    }
}

fn usage() -> &'static str {
    "usage: sandf-cli <simulate|analyze|thresholds> [--flag value ...]\n\
     \n\
     simulate   --n 500 --s 40 --dl 18 --loss 0.01 --rounds 300 --seed 42\n\
     analyze    --s 40 --dl 18 --loss 0.01\n\
     thresholds --dhat 30 --delta 0.01"
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let n: usize = flags.get("n", 500)?;
    let s: usize = flags.get("s", 40)?;
    let d_l: usize = flags.get("dl", 18)?;
    let loss: f64 = flags.get("loss", 0.01)?;
    let rounds: usize = flags.get("rounds", 300)?;
    let seed: u64 = flags.get("seed", 42)?;

    let config = SfConfig::new(s, d_l).map_err(|e| e.to_string())?;
    let d0 = ((d_l + (s - d_l) * 2 / 3) & !1).min(n - 2).max(2);
    let nodes = topology::circulant(n, config, d0);
    let mut sim = Simulation::new(nodes, UniformLoss::new(loss).map_err(|e| e.to_string())?, seed);
    sim.run_rounds(rounds);

    let graph = sim.graph();
    let out = DegreeStats::from_samples(&graph.out_degrees());
    let inn = DegreeStats::from_samples(&graph.in_degrees());
    let dep = sim.dependence();
    let stats = sim.stats();
    println!("n={n} s={s} d_L={d_l} loss={loss} rounds={rounds} seed={seed}");
    println!("connected: {}", graph.is_weakly_connected());
    println!("outdegree: {:.2} ± {:.2} [{}..{}]", out.mean, out.std_dev(), out.min, out.max);
    println!("indegree:  {:.2} ± {:.2} [{}..{}]", inn.mean, inn.std_dev(), inn.min, inn.max);
    println!("independent entries: {:.1}%", dep.independent_fraction() * 100.0);
    println!(
        "events: {} actions, dup rate {:.4}, del rate {:.4}, loss rate {:.4}",
        stats.actions,
        stats.duplication_rate().unwrap_or(0.0),
        stats.deletion_rate().unwrap_or(0.0),
        stats.loss_rate().unwrap_or(0.0)
    );
    Ok(())
}

fn cmd_analyze(flags: &Flags) -> Result<(), String> {
    let s: usize = flags.get("s", 40)?;
    let d_l: usize = flags.get("dl", 18)?;
    let loss: f64 = flags.get("loss", 0.01)?;
    let config = SfConfig::new(s, d_l).map_err(|e| e.to_string())?;
    let mc = DegreeMc::solve(DegreeMcParams::new(config, loss)).map_err(|e| e.to_string())?;
    println!("degree Markov chain, s={s} d_L={d_l} loss={loss}");
    println!(
        "states: {}, fixed-point iterations: {}",
        mc.states().len(),
        mc.fixed_point_iterations()
    );
    println!("E[out] = {:.3} ± {:.3}", mc.mean_out(), mc.std_out());
    println!("E[in]  = {:.3} ± {:.3}", mc.mean_in(), mc.std_in());
    println!("dup probability: {:.5}", mc.duplication_probability());
    println!("del probability: {:.5}", mc.deletion_probability());
    if let Some(corr) = mc.degree_correlation() {
        println!("corr(out, in) = {corr:.3}");
    }
    Ok(())
}

fn cmd_thresholds(flags: &Flags) -> Result<(), String> {
    let d_hat: usize = flags.get("dhat", 30)?;
    let delta: f64 = flags.get("delta", 0.01)?;
    let sel = select_thresholds(d_hat, delta).map_err(|e| e.to_string())?;
    println!("target E[d]={d_hat}, delta={delta}");
    println!("d_L = {}, s = {}", sel.d_l, sel.s);
    println!(
        "P(dup) = {:.5}, P(del) = {:.5}",
        sel.duplication_probability, sel.deletion_probability
    );
    println!("expected outdegree of the law: {:.3}", sel.expected_out_degree);
    Ok(())
}

/// Overlay-validation after simulate: also report the MC prediction so the
/// user sees the analysis next to the run.
fn dispatch(command: &str, flags: &Flags) -> Result<(), String> {
    match command {
        "simulate" => cmd_simulate(flags),
        "analyze" => cmd_analyze(flags),
        "thresholds" => cmd_thresholds(flags),
        "compare" => {
            // Undocumented helper: run both and print the mean gap.
            cmd_analyze(flags)?;
            let s: usize = flags.get("s", 40)?;
            let d_l: usize = flags.get("dl", 18)?;
            let loss: f64 = flags.get("loss", 0.01)?;
            let config = SfConfig::new(s, d_l).map_err(|e| e.to_string())?;
            let sim = steady_state_degrees(
                &ExperimentParams { n: 800, config, loss, burn_in: 300, seed: 42 },
                20,
                5,
            );
            println!("simulated E[out] = {:.3} (n=800)", sim.out_degrees.mean());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(rest) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(command, &flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        let args: Vec<String> =
            pairs.iter().flat_map(|(k, v)| [format!("--{k}"), (*v).to_string()]).collect();
        Flags::parse(&args).unwrap()
    }

    #[test]
    fn parses_flags_and_defaults() {
        let f = flags(&[("n", "100"), ("loss", "0.05")]);
        assert_eq!(f.get::<usize>("n", 1).unwrap(), 100);
        assert_eq!(f.get::<f64>("loss", 0.0).unwrap(), 0.05);
        assert_eq!(f.get::<u64>("seed", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(Flags::parse(&["n".to_string()]).is_err());
        assert!(Flags::parse(&["--n".to_string()]).is_err());
        let f = flags(&[("n", "abc")]);
        assert!(f.get::<usize>("n", 1).is_err());
    }

    #[test]
    fn thresholds_command_runs() {
        let f = flags(&[("dhat", "20"), ("delta", "0.01")]);
        assert!(cmd_thresholds(&f).is_ok());
    }

    #[test]
    fn unknown_command_is_reported() {
        let f = Flags::default();
        assert!(dispatch("frobnicate", &f).is_err());
    }
}
