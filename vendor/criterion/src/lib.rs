//! Offline stand-in for the subset of `criterion` this workspace's
//! micro-benchmarks use. It keeps the authoring API (`criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! throughput annotations) and swaps the statistics engine for a simple
//! calibrated wall-clock loop: each benchmark is auto-scaled to a target
//! measurement time, then reported as `ns/iter` mean ± std over fixed
//! sample batches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

const TARGET_BATCH: Duration = Duration::from_millis(40);
const SAMPLES: usize = 8;

/// Per-iteration work annotation, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id naming only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration over the measured samples.
    mean_ns: f64,
    /// Standard deviation of per-sample ns/iter.
    std_ns: f64,
}

impl Bencher {
    /// Times `f`, auto-calibrating the batch size. The routine is run
    /// until one batch takes at least `TARGET_BATCH`, then measured
    /// `SAMPLES` times at that batch size.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_BATCH || batch >= 1 << 28 {
                break;
            }
            // Jump straight toward the target rather than doubling blindly.
            let scale = (TARGET_BATCH.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            batch = (batch.saturating_mul(scale as u64)).clamp(batch + 1, 1 << 28);
        }
        let mut per_iter = [0f64; SAMPLES];
        for sample in &mut per_iter {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            *sample = start.elapsed().as_nanos() as f64 / batch as f64;
        }
        let mean = per_iter.iter().sum::<f64>() / SAMPLES as f64;
        let var = per_iter.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / SAMPLES as f64;
        self.mean_ns = mean;
        self.std_ns = var.sqrt();
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / bencher.mean_ns)
        }
        Some(Throughput::Bytes(n)) if bencher.mean_ns > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / bencher.mean_ns)
        }
        _ => String::new(),
    };
    println!("{name:<40} {:>12.1} ns/iter (± {:.1}){rate}", bencher.mean_ns, bencher.std_ns);
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher { mean_ns: 0.0, std_ns: 0.0 };
        let mut f = f;
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher { mean_ns: 0.0, std_ns: 0.0 };
        let mut f = f;
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.0), &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut bencher = Bencher { mean_ns: 0.0, std_ns: 0.0 };
        bencher.iter(|| std::hint::black_box(3u64).wrapping_mul(5));
        assert!(bencher.mean_ns > 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 16).0, "solve/16");
        assert_eq!(BenchmarkId::from_parameter(100).0, "100");
    }
}
