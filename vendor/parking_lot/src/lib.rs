//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poisoning),
//! wrapping `std::sync::Mutex`. A poisoned std mutex is recovered rather
//! than propagated — matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A mutex without lock poisoning; mirrors `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: the next lock() just works.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
