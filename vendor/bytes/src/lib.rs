//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: [`Bytes`], [`BytesMut`], and big-endian [`Buf`]/[`BufMut`]
//! accessors, backed by plain `Vec<u8>` (no refcounted views — the wire
//! codec only builds and parses 17-byte datagrams).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// An immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into an owned buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }
}

impl core::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// A growable byte buffer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Vec::with_capacity(capacity))
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl core::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read access over a byte source; big-endian accessors advance the
/// cursor. Implemented for `&[u8]` exactly like the upstream crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances past `count` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` bytes remain.
    fn advance(&mut self, count: usize);

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64 {
        let mut word = [0u8; 8];
        word.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(word)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, count: usize) {
        *self = &self[count..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access onto a byte sink; big-endian appenders.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_roundtrips_big_endian() {
        let mut buf = BytesMut::with_capacity(17);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_u64(u64::MAX);
        buf.put_u8(0x7f);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 17);
        assert_eq!(frozen[0], 0x01);
        assert_eq!(frozen[7], 0x08);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_u64(), u64::MAX);
        assert_eq!(cursor.get_u8(), 0x7f);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_narrows_the_view() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.chunk(), &[3, 4]);
        assert_eq!(cursor.remaining(), 2);
    }
}
