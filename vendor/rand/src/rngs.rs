//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++
/// (Blackman & Vigna), state-expanded from the seed with SplitMix64.
///
/// Chosen over upstream's ChaCha12 for zero dependencies and speed; it
/// passes BigCrush and is more than adequate for simulation sampling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for code written against `rand::rngs::SmallRng`.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_xoshiro256pp() {
        // Reference vector: seeding xoshiro256++ with state expanded by
        // SplitMix64 from 0 — first outputs must be stable forever (golden
        // TSV tests depend on stream stability).
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // All four words distinct and nonzero with overwhelming probability.
        assert!(first.iter().all(|&w| w != 0));
    }

    #[test]
    fn output_is_well_mixed() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0u32;
        for _ in 0..1_000 {
            ones += rng.next_u64().count_ones();
        }
        let mean_bits = f64::from(ones) / 1_000.0;
        assert!((mean_bits - 32.0).abs() < 1.0, "bit bias: {mean_bits}");
    }
}
