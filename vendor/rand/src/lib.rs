//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no access to crates.io, so the
//! workspace patches `rand` to this path crate (see the root
//! `Cargo.toml`).
//!
//! The API mirrors `rand` 0.8 exactly for the parts that exist:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], [`seq::SliceRandom`],
//! [`seq::index::sample`], and [`thread_rng`]. The generator behind
//! [`rngs::StdRng`] differs (xoshiro256++ instead of ChaCha12) — streams
//! are still deterministic per seed, high quality, and portable, but they
//! are *different* streams than upstream `rand` would produce, so any
//! seed-sensitive expectation baked into tests was re-validated against
//! this generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of uniformly random 64-bit words, the base trait every
/// generator implements.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// state space (SplitMix64, as recommended by the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from unpredictable process-local entropy
    /// (address-space and clock bits). Not cryptographically secure.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let unique = COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    nanos ^ unique.rotate_left(17) ^ (std::process::id() as u64) << 32
}

/// Sampling helpers layered on any [`RngCore`]; mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 random mantissa bits, the standard unit-interval construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample itself; mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty(&self) -> bool;
}

/// Unbiased uniform integer in `[0, span)` by Lemire's multiply-shift
/// rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn is_empty(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn is_empty(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Returns a process-local generator seeded from ambient entropy; mirrors
/// `rand::thread_rng` closely enough for examples and doc tests. Unlike
/// upstream it returns a fresh owned generator per call.
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn fill_bytes_fills_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
