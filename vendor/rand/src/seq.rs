//! Sequence sampling: shuffles, choices, and index sampling.

use crate::{Rng, RngCore};

/// Random operations on slices; mirrors `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns one uniformly chosen mutable element, or `None` if empty.
    fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            Some(&mut self[i])
        }
    }
}

/// Index sampling without replacement; mirrors `rand::seq::index`.
pub mod index {
    use super::RngCore;
    use crate::Rng;

    /// A set of sampled indices.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Consumes the set into a plain vector.
        #[must_use]
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        #[must_use]
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no index was sampled.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, uniformly over
    /// subsets, by a partial Fisher–Yates pass.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(amount <= length, "cannot sample {amount} of {length}");
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng) == Some(&5));
    }

    #[test]
    fn sampled_indices_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let picks = index::sample(&mut rng, 20, 7).into_vec();
            assert_eq!(picks.len(), 7);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "duplicate index sampled");
            assert!(picks.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_all_returns_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut all = index::sample(&mut rng, 6, 6).into_vec();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }
}
