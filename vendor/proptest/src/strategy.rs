//! Strategies: composable descriptions of how to generate values.

use crate::TestRng;
use rand::Rng;

/// A generator of values of one type. The `sample` method is the whole
/// contract — no shrinking machinery.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value; mirrors `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.gen_range(0..self.options.len());
        self.options[k].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Samples the full domain of a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Types with a canonical full-domain strategy; mirrors
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`; mirrors `proptest::prelude::any`.
#[must_use]
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any::default()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = test_rng("ranges_sample_in_bounds");
        for _ in 0..1_000 {
            let x = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0usize..=4).sample(&mut rng);
            assert!(y <= 4);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = test_rng("prop_map_and_tuples_compose");
        let strategy = ((0u64..5), (10u64..20)).prop_map(|(a, b)| a + b);
        for _ in 0..500 {
            let v = strategy.sample(&mut rng);
            assert!((10..25).contains(&v));
        }
    }

    #[test]
    fn oneof_reaches_every_branch() {
        let mut rng = test_rng("oneof_reaches_every_branch");
        let strategy = OneOf::new(vec![
            (0u64..1).prop_map(|_| 1u64).boxed(),
            (0u64..1).prop_map(|_| 2u64).boxed(),
            (0u64..1).prop_map(|_| 3u64).boxed(),
        ]);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[(strategy.sample(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = test_rng("any_bool_produces_both_values");
        let strategy = any::<bool>();
        let trues = (0..200).filter(|_| strategy.sample(&mut rng)).count();
        assert!(trues > 50 && trues < 150, "biased bool: {trues}/200");
    }

    #[test]
    fn just_always_returns_its_value() {
        let mut rng = test_rng("just_always_returns_its_value");
        let strategy = Just(7u8);
        assert!((0..10).all(|_| strategy.sample(&mut rng) == 7));
    }
}
