//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// A length specification for [`vec()`](crate::collection::vec): an exact size, `lo..hi`, or
/// `lo..=hi`; mirrors `proptest::collection::SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self { lo: exact, hi: exact }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// comes from `size`; mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use crate::test_rng;

    #[test]
    fn exact_size_is_exact() {
        let mut rng = test_rng("exact_size_is_exact");
        let strategy = vec(any::<u8>(), 36);
        for _ in 0..50 {
            assert_eq!(strategy.sample(&mut rng).len(), 36);
        }
    }

    #[test]
    fn ranged_sizes_cover_bounds() {
        let mut rng = test_rng("ranged_sizes_cover_bounds");
        let strategy = vec(any::<bool>(), 0..4);
        let mut seen = [false; 4];
        for _ in 0..500 {
            let v = strategy.sample(&mut rng);
            assert!(v.len() < 4);
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&s| s), "lengths 0..4 not all reached");
    }
}
