//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this path crate. It keeps the same test-authoring surface
//! — [`proptest!`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//! [`Strategy`], [`any`], `collection::vec`, `prop_map`, tuples, integer
//! ranges, and [`ProptestConfig`] — with two deliberate simplifications:
//!
//! * **Deterministic cases instead of entropy + regression files.** Each
//!   test function derives its RNG seed from its own name, so every run
//!   explores the same cases. This trades discovery of brand-new
//!   counterexamples across runs for bit-stable CI, which is what this
//!   repository's evaluation-reproducibility goals actually need.
//! * **No shrinking.** On failure the full generated inputs are printed
//!   (cases here are small enough to read directly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{Arbitrary, BoxedStrategy, Strategy};

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

pub use strategy::any;

/// The RNG driving strategy sampling.
pub type TestRng = StdRng;

/// Per-`proptest!` configuration. Only the fields this workspace touches.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A test-case failure produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self(message)
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a, the stable name→seed hash behind per-test determinism.
#[must_use]
pub fn stable_hash(data: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in data.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deterministic RNG for a named test function.
#[must_use]
pub fn test_rng(test_name: &str) -> TestRng {
    StdRng::seed_from_u64(stable_hash(test_name))
}

/// Number of cases to run: the configured count, overridable with the
/// `PROPTEST_CASES` environment variable.
#[must_use]
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(config.cases)
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..10, flag in any::<bool>()) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = $crate::effective_cases(&config);
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let args_desc = format!(concat!($(stringify!($arg), " = {:?}\n  ",)+), $(&$arg),+);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest case {case}/{cases} failed: {err}\n  {args}",
                            case = case,
                            cases = cases,
                            err = err,
                            args = args_desc,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the enclosing property unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
