//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! unbounded MPSC channels, delegated to `std::sync::mpsc` (whose
//! `Sender`/`Receiver`/`TryRecvError` types have the identical shape the
//! in-memory transport relies on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels; mirrors `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded MPSC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn cloneable_senders_fan_in() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
